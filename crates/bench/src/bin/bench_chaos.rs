//! Chaos SLO harness: drives the serving layer through a fault-rate ×
//! overload grid plus a worker-poison cell and gates the resilience
//! SLOs, written to `BENCH_chaos.json`.
//!
//! Grid cells (all on the `bench_serve` fixture, one worker, every
//! schedule a pure function of fixed seeds):
//!
//! * `baseline`     — clean links, queue sized to the wave;
//! * `faults`       — 25 % of sessions on moderate uplink fault plans;
//! * `overload`     — clean links, queue capacity ¼ of demand (the
//!   admission gate must shed, the `High`-priority session must not
//!   be);
//! * `faults+overload` — both at once (the SLO cell);
//! * `poison`       — one injected worker panic (containment must
//!   bisect the poisoned ticket out and answer everything else).
//!
//! Invariants asserted *inside every cell* (see [`flash_bench::chaos`]):
//! terminal-outcome dichotomy (every `Ok` dispatch answered xor
//! refused, exactly once) and clean-session agreement 1.0 against the
//! cleartext convolution — chaos may cost availability, never silent
//! corruption. Gated here on top:
//!
//! * fault cells detect faults, overload cells shed, the poison cell
//!   refuses exactly the poisoned request;
//! * **SLO**: clean-session p99 latency of each faulted cell stays
//!   within 3× of its fault-free twin at the same overload level —
//!   faulted sessions must not drag clean ones down.
//!
//! Flags: `--quick` shrinks the grid to 64 sessions per cell and skips
//! the artifact write (the CI smoke); `--sessions N` overrides the
//! fleet size (floor 4).

use flash_bench::banner;
use flash_bench::chaos::{run_cell, CellOutcome, CellSpec};
use flash_bench::perf::{calibration_ms, git_revision, simd_json};
use flash_bench::serving;

const REQS_PER_SESSION: u64 = 2;
const WORKERS: usize = 1;
const SLO_P99_FACTOR: f64 = 3.0;

const GRID: [CellSpec; 5] = [
    CellSpec {
        name: "baseline",
        fault_fraction: 0.0,
        overload_x: 1.0,
        poison: false,
    },
    CellSpec {
        name: "faults",
        fault_fraction: 0.25,
        overload_x: 1.0,
        poison: false,
    },
    CellSpec {
        name: "overload",
        fault_fraction: 0.0,
        overload_x: 4.0,
        poison: false,
    },
    CellSpec {
        name: "faults+overload",
        fault_fraction: 0.25,
        overload_x: 4.0,
        poison: false,
    },
    CellSpec {
        name: "poison",
        fault_fraction: 0.0,
        overload_x: 1.0,
        poison: true,
    },
];

/// Silences the intentional worker panics (the containment boundary
/// catches them; the default hook would spray a backtrace per injected
/// panic into the report). Everything else still reaches the default
/// hook.
fn install_panic_filter() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("chaos: injected panic"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("chaos: injected panic"));
        if !injected {
            default_hook(info);
        }
    }));
}

fn cell_line(spec: &CellSpec, c: &CellOutcome) {
    let refusals: Vec<String> = c
        .refusals
        .iter()
        .map(|(class, n)| format!("{n} {class}"))
        .collect();
    println!(
        "{:18} {:4} sessions ({:3} faulty)  {:5} dispatched  {:5} answered  {:4} refused [{}]  clean p50 {:7.2} ms  p99 {:8.2} ms  {:6.2} ms/req",
        spec.name,
        c.connected,
        c.faulty_sessions,
        c.dispatched,
        c.answered,
        c.refused,
        refusals.join(", "),
        c.clean_p50_ms,
        c.clean_p99_ms,
        c.ms_per_req(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut sessions: u64 = if quick { 64 } else { 192 };
    if let Some(pos) = args.iter().position(|a| a == "--sessions") {
        sessions = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--sessions takes a number");
    }
    sessions = sessions.max(4);
    install_panic_filter();

    banner("Chaos SLO harness: fault-rate x overload grid + worker poison");
    println!(
        "grid: {} cells x {sessions} sessions x {REQS_PER_SESSION} requests, {WORKERS} worker(s), model N={} {:?}",
        GRID.len(),
        serving::params().n,
        serving::shape(),
    );

    let calib = calibration_ms();
    // One discarded full-size wave: the first wave in a process pays
    // the cold start (allocator growth, scratch pools, plan cache) —
    // at this fleet size several times the warm cost — which would
    // otherwise land entirely on the first grid cell and skew both the
    // committed clean-path figure and the warm twin each SLO ratio
    // divides by.
    let _ = run_cell(&GRID[0], sessions, REQS_PER_SESSION, WORKERS);
    let mut cells: Vec<(&CellSpec, CellOutcome)> = Vec::with_capacity(GRID.len());
    for spec in GRID.iter() {
        let c = run_cell(spec, sessions, REQS_PER_SESSION, WORKERS);
        cell_line(spec, &c);
        cells.push((spec, c));
    }
    let by_name = |name: &str| {
        &cells
            .iter()
            .find(|(s, _)| s.name == name)
            .expect("grid cell ran")
            .1
    };

    // --- Per-cell gates (the dichotomy and agreement invariants were
    // already asserted inside each run).
    let demand = sessions * REQS_PER_SESSION;
    let baseline = by_name("baseline");
    assert_eq!(
        baseline.answered, demand,
        "baseline cell must answer the whole wave"
    );
    assert_eq!(baseline.refused, 0, "baseline cell must refuse nothing");
    assert_eq!(baseline.faults_detected, 0, "baseline links are clean");
    for name in ["faults", "faults+overload"] {
        let c = by_name(name);
        assert!(c.faults_detected > 0, "{name}: the fault plans never fired");
    }
    for name in ["overload", "faults+overload"] {
        let c = by_name(name);
        assert!(
            c.stats.shed > 0,
            "{name}: a 4x-overloaded queue never shed — admission control is inert"
        );
    }
    let poison = by_name("poison");
    assert_eq!(
        poison.stats.poisoned, 1,
        "poison cell must contain exactly the injected panic"
    );
    assert_eq!(
        poison.refusals.get("poisoned"),
        Some(&1),
        "the poisoned ticket must be refused typed"
    );
    assert_eq!(
        poison.answered,
        poison.dispatched - 1,
        "containment must answer every co-batched ticket"
    );

    // --- The SLO: clean-session p99 of each faulted cell vs its
    // fault-free twin at the same overload level.
    let mut slo = Vec::new();
    for (chaotic, twin) in [("faults", "baseline"), ("faults+overload", "overload")] {
        let (c, t) = (by_name(chaotic), by_name(twin));
        let ratio = if t.clean_p99_ms > 0.0 {
            c.clean_p99_ms / t.clean_p99_ms
        } else {
            1.0
        };
        println!(
            "{:18} clean p99 {:8.2} ms vs {twin} {:8.2} ms  ratio {ratio:5.2} (SLO <= {SLO_P99_FACTOR})",
            format!("slo:{chaotic}"),
            c.clean_p99_ms,
            t.clean_p99_ms,
        );
        assert!(
            ratio <= SLO_P99_FACTOR,
            "SLO violated: {chaotic} clean-session p99 is {ratio:.2}x its fault-free twin"
        );
        slo.push((chaotic, twin, ratio));
    }
    println!(
        "{:18} every dispatched request reached exactly one terminal outcome in every cell",
        "dichotomy"
    );

    if quick {
        println!("note: --quick smoke; BENCH_chaos.json left untouched");
        return;
    }

    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serve_chaos_slo\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"git_revision\": \"{}\",\n", git_revision()));
    json.push_str(&simd_json());
    json.push_str(&format!("  \"calib_ms\": {calib:.4},\n"));
    json.push_str(&format!("  \"sessions\": {sessions},\n"));
    json.push_str(&format!("  \"reqs_per_session\": {REQS_PER_SESSION},\n"));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!(
        "  \"clean_ms_per_req\": {:.4},\n",
        baseline.ms_per_req()
    ));
    json.push_str(&format!("  \"slo_p99_factor\": {SLO_P99_FACTOR},\n"));
    json.push_str("  \"slo\": [\n");
    for (i, (chaotic, twin, ratio)) in slo.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"cell\": \"{chaotic}\", \"twin\": \"{twin}\", \"clean_p99_ratio\": {ratio:.3}}}{}\n",
            if i + 1 < slo.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"cells\": [\n");
    for (i, (spec, c)) in cells.iter().enumerate() {
        let refusals: Vec<String> = c
            .refusals
            .iter()
            .map(|(class, n)| format!("\"{class}\": {n}"))
            .collect();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"fault_fraction\": {}, \"overload_x\": {}, \"poison\": {}, \"sessions\": {}, \"faulty_sessions\": {}, \"dispatched\": {}, \"dispatch_errors\": {}, \"answered\": {}, \"refused\": {}, \"refusals\": {{{}}}, \"collect_errors\": {}, \"clean_answered\": {}, \"clean_agreement\": {:.4}, \"clean_p50_ms\": {:.3}, \"clean_p99_ms\": {:.3}, \"ms_per_req\": {:.4}, \"elapsed_ms\": {:.3}, \"requests_ok\": {}, \"requests_refused\": {}, \"shed\": {}, \"expired\": {}, \"quarantined\": {}, \"poisoned\": {}, \"retries\": {}, \"watchdog_kicks\": {}, \"failed_sessions\": {}, \"faults_detected\": {}}}{}\n",
            spec.name,
            spec.fault_fraction,
            spec.overload_x,
            spec.poison,
            c.connected,
            c.faulty_sessions,
            c.dispatched,
            c.dispatch_errors,
            c.answered,
            c.refused,
            refusals.join(", "),
            c.collect_errors,
            c.clean_answered,
            c.clean_agreement,
            c.clean_p50_ms,
            c.clean_p99_ms,
            c.ms_per_req(),
            c.elapsed_s * 1e3,
            c.stats.requests_ok,
            c.stats.requests_refused,
            c.stats.shed,
            c.stats.expired,
            c.stats.quarantined,
            c.stats.poisoned,
            c.stats.retries,
            c.stats.watchdog_kicks,
            c.failed_sessions,
            c.faults_detected,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"telemetry\": {}\n",
        flash_telemetry::snapshot().to_json(2)
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");
}
