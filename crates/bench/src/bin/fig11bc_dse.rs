//! Regenerates **Figure 11(b)(c)**: the DSE solution clouds and Pareto
//! fronts for two representative ResNet-50 layers (the paper's layers 28
//! and 41), plotting normalized weight-FFT power vs. HConv output error
//! variance.

use flash_bench::{banner, subhead};
use flash_dse::bayesopt::{optimize_multi, random_search, BoConfig};
use flash_dse::objective::Objective;
use flash_dse::pareto::{hypervolume, pareto_front};
use flash_dse::space::DesignSpace;
use flash_nn::resnet::resnet50_conv_layers;
use flash_nn::sparsity::layer_weight_sparsity;
use rand::SeedableRng;

fn main() {
    banner("Figure 11(b)(c): approximate-FFT DSE for ResNet-50 layers 28 and 41");
    let net = resnet50_conv_layers();
    let he = flash_he::HeParams::flash_default();

    for (fig, layer_idx) in [("(b)", 28usize), ("(c)", 41)] {
        let spec = net.layer(layer_idx);
        let sp = layer_weight_sparsity(spec, he.n);
        subhead(&format!(
            "figure {fig}: layer {layer_idx} = {} ({}x{} kernel, {} valid coeffs)",
            spec.name, spec.k, spec.k, sp.valid_per_poly
        ));

        let space = DesignSpace::flash_default(he.n);
        let obj = Objective::from_layer(space, sp.valid_per_poly, 8.0, (he.t / 2) as f64);
        // ~1000 evaluations, as in the paper's clouds.
        let weights: Vec<f64> = (1..=10).map(|i| i as f64 / 11.0).collect();
        let cfg = BoConfig {
            init: 25,
            iters: 75,
            candidates: 256,
            ..BoConfig::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(layer_idx as u64);
        let evals = optimize_multi(&obj, &weights, &cfg, &mut rng);
        println!("evaluated {} design points", evals.len());

        let front = pareto_front(&evals);
        println!("pareto front ({} points):", front.len());
        println!(
            "{:>10} {:>14} {:>8} {:>8}",
            "power mW", "err variance", "mean dw", "mean k"
        );
        let step = (front.len() / 8).max(1);
        for e in front.iter().step_by(step) {
            let dw = e.point.mean_width(obj.space());
            let k: f64 = e.point.k.iter().sum::<usize>() as f64 / e.point.k.len() as f64;
            println!(
                "{:>10.3} {:>14.3e} {:>8.1} {:>8.1}",
                e.power, e.error_variance, dw, k
            );
        }

        // Random search with the same budget, for the BO-vs-random story.
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(layer_idx as u64);
        let rs = random_search(&obj, evals.len(), &mut rng2);
        let rs_front = pareto_front(&rs);
        let ref_p = front
            .iter()
            .chain(&rs_front)
            .map(|e| e.power)
            .fold(0.0f64, f64::max)
            * 1.1;
        let hv_bo = hypervolume(&front, ref_p, 20.0);
        let hv_rs = hypervolume(&rs_front, ref_p, 20.0);
        println!(
            "hypervolume: bayesian {hv_bo:.1} vs random {hv_rs:.1} ({} better)",
            if hv_bo >= hv_rs { "BO" } else { "random" }
        );
    }

    println!();
    println!("paper: 1000 solutions per layer; the front trades ~an order of");
    println!("magnitude of power against many decades of error variance.");
}
