//! End-to-end private-inference benchmark: full networks through the
//! hybrid HE/2PC protocol, written to `BENCH_e2e.json`.
//!
//! Two workloads run, both with every convolution homomorphic over
//! additive shares and every non-linearity (ReLU, re-quantization,
//! max/average pooling, classifier, argmax) on the executable 2PC
//! suite:
//!
//! * the 3-conv synthetic CNN whose task is its own exact argmax — the
//!   direct protocol-correctness measure (agreement must be ≥ 99 %);
//! * a width/resolution-reduced ResNet-18 with the full residual
//!   topology (stem, 3×3/2 max-pool, identity and projection shortcuts,
//!   global average pooling, classifier).
//!
//! The artifact records the per-layer HE/non-linear/wire split —
//! latency, ciphertext bytes, 2PC payload and framed bytes, fault
//! recoveries — plus each layer's analytical `NonlinearModel` byte
//! prediction; the run fails if measured non-linear payload drifts
//! outside `[0.5×, 2×]` of the prediction or agreement drops below
//! 99 %. The `fixture_ms` key is the committed baseline
//! `bench_perf --check-regression` re-measures (calibration-normalized)
//! on every gate run.
//!
//! `--quick` shrinks both runs and skips the artifact write (the CI
//! smoke).

use flash_accel::e2e::{
    e2e_config, fixture_run_ms, run_resnet_e2e, run_synthetic_e2e, E2eOptions, E2eReport,
};
use flash_bench::banner;
use flash_bench::perf::{calibration_ms, git_revision, simd_json};
use flash_nn::resnet::QuantResnet;
use flash_nn::synthetic::small_testnet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_report(r: &E2eReport) {
    println!(
        "\n{}: {} sample(s), agreement {:.1}%  (HE {:.1} ms, 2PC {:.1} ms, \
         HE {:.1} KiB, 2PC payload {:.1} KiB, model ratio {:.2})",
        r.network,
        r.samples,
        r.agreement * 100.0,
        r.he_ms(),
        r.nonlinear_ms(),
        r.he_bytes() as f64 / 1024.0,
        r.nonlinear_payload_bytes() as f64 / 1024.0,
        r.byte_model_ratio(),
    );
    println!(
        "{:22} {:7} {:>9} {:>9} {:>10} {:>10} {:>10} {:>6}",
        "layer", "kind", "he_ms", "nl_ms", "he_KiB", "nl_KiB", "pred_KiB", "ratio"
    );
    for l in &r.layers {
        let measured = l.nonlinear_payload_bytes as f64;
        println!(
            "{:22} {:7} {:9.2} {:9.2} {:10.1} {:10.1} {:10.1} {:6.2}",
            l.name,
            l.kind,
            l.he_ms,
            l.nonlinear_ms,
            l.he_bytes as f64 / 1024.0,
            measured / 1024.0,
            l.predicted_bytes / 1024.0,
            measured / l.predicted_bytes.max(1.0),
        );
    }
}

fn gate(r: &E2eReport) {
    assert!(
        r.agreement >= 0.99,
        "{}: private/plaintext argmax agreement {:.3} below 99%",
        r.network,
        r.agreement
    );
    let ratio = r.byte_model_ratio();
    assert!(
        (0.5..=2.0).contains(&ratio),
        "{}: measured 2PC payload is {ratio:.2}x the NonlinearModel prediction",
        r.network
    );
}

fn report_json(r: &E2eReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\n    \"network\": \"{}\",\n    \"samples\": {},\n    \"agreement\": {:.4},\n",
        r.network, r.samples, r.agreement
    ));
    s.push_str(&format!(
        "    \"he_ms\": {:.3},\n    \"nonlinear_ms\": {:.3},\n    \"he_bytes\": {},\n",
        r.he_ms(),
        r.nonlinear_ms(),
        r.he_bytes()
    ));
    s.push_str(&format!(
        "    \"nonlinear_payload_bytes\": {},\n    \"nonlinear_wire_bytes\": {},\n",
        r.nonlinear_payload_bytes(),
        r.nonlinear_wire_bytes()
    ));
    s.push_str(&format!(
        "    \"predicted_bytes\": {:.1},\n    \"byte_model_ratio\": {:.4},\n",
        r.predicted_bytes(),
        r.byte_model_ratio()
    ));
    s.push_str(&format!(
        "    \"faults_detected\": {},\n    \"frames_retried\": {},\n    \"layers\": [\n",
        r.faults_detected(),
        r.frames_retried()
    ));
    for (i, l) in r.layers.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"name\": \"{}\", \"kind\": \"{}\", \"he_ms\": {:.3}, \"nonlinear_ms\": {:.3}, \
             \"he_bytes\": {}, \"nonlinear_payload_bytes\": {}, \"nonlinear_wire_bytes\": {}, \
             \"predicted_bytes\": {:.1}, \"elems\": {}}}{}\n",
            l.name,
            l.kind,
            l.he_ms,
            l.nonlinear_ms,
            l.he_bytes,
            l.nonlinear_payload_bytes,
            l.nonlinear_wire_bytes,
            l.predicted_bytes,
            l.elems,
            if i + 1 < r.layers.len() { "," } else { "" }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    banner("End-to-end private inference: HE convolutions + 2PC non-linear layers");
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rev = git_revision();
    let cfg = e2e_config();
    println!(
        "operating point: N = {}, q = 2^62 (pow2 backend), l = {} share ring",
        cfg.he.n,
        cfg.he.t.trailing_zeros()
    );

    // Regression fixture paired with calibration: per-value minimum
    // over spaced attempts, so a contention burst cannot bake into the
    // committed baseline (contention only ever adds time).
    let (mut calib, mut fixture) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        calib = calib.min(calibration_ms());
        fixture = fixture.min(fixture_run_ms());
    }
    println!("fixture: {fixture:.1} ms  (calibration {calib:.4} ms)");

    // The synthetic CNN: the network's labels are its own exact argmax,
    // so agreement is pure protocol correctness.
    let mut rng = StdRng::seed_from_u64(0xe2e_0001);
    let synthetic = small_testnet(&mut rng);
    let syn_opts = E2eOptions {
        samples: if quick { 3 } else { 20 },
        ..E2eOptions::default()
    };
    let syn = run_synthetic_e2e(&synthetic, &cfg, &syn_opts).expect("synthetic e2e");
    print_report(&syn);
    gate(&syn);

    // The reduced ResNet-18: full residual topology from the
    // flash_nn::resnet table at 1/8 width on 32x32 inputs.
    let mut rng = StdRng::seed_from_u64(0xe2e_0002);
    let (div, input_h) = if quick { (16, 16) } else { (8, 32) };
    let resnet = QuantResnet::reduced_resnet18(div, input_h, 10, &mut rng);
    let res_opts = E2eOptions {
        samples: if quick { 1 } else { 2 },
        ..E2eOptions::default()
    };
    let res = run_resnet_e2e(&resnet, &cfg, &res_opts).expect("resnet e2e");
    print_report(&res);
    gate(&res);

    if quick {
        println!("\n--quick: skipping BENCH_e2e.json write");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"e2e_private_inference\",\n  \"host_parallelism\": {host},\n  \
         \"git_revision\": \"{rev}\",\n{}  \"calib_ms\": {calib:.4},\n  \
         \"fixture_ms\": {fixture:.3},\n  \"he_n\": {},\n  \"share_bits\": {},\n  \
         \"synthetic\": {},\n  \"resnet18_reduced\": {}\n}}\n",
        simd_json(),
        cfg.he.n,
        cfg.he.t.trailing_zeros(),
        report_json(&syn),
        report_json(&res),
    );
    std::fs::write("BENCH_e2e.json", &json).expect("write BENCH_e2e.json");
    println!("\nwrote BENCH_e2e.json");
}
