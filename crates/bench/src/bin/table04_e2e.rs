//! Regenerates **Table IV**: end-to-end latency and accuracy of the
//! linear layers of ResNet-18/-50 on FLASH vs the CHAM baseline.

use flash_accel::config::FlashConfig;
use flash_accel::inference::{accuracy_estimate, run_network};
use flash_bench::{banner, subhead, times};
use flash_hw::baselines::paper_table4;
use flash_nn::resnet::{resnet18_conv_layers, resnet50_conv_layers};

fn main() {
    banner("Table IV: linear-layer latency & accuracy, CHAM vs FLASH");
    let cfg = FlashConfig::paper_default();

    for (net, cham_paper, flash_paper, baseline_acc) in [
        (
            resnet18_conv_layers(),
            paper_table4::CHAM_RESNET18,
            paper_table4::FLASH_RESNET18,
            0.6845,
        ),
        (
            resnet50_conv_layers(),
            paper_table4::CHAM_RESNET50,
            paper_table4::FLASH_RESNET50,
            0.7424,
        ),
    ] {
        subhead(&net.name);
        let run = run_network(&net, &cfg);
        let acc = accuracy_estimate(&cfg, baseline_acc, 7);
        println!(
            "{:<24} {:>14} {:>14} {:>12}",
            "", "latency (ms)", "speedup", "accuracy (%)"
        );
        println!(
            "{:<24} {:>14.2} {:>14} {:>12.2}",
            "CHAM (measured model)",
            run.cham_latency_s * 1e3,
            "1.00x",
            baseline_acc * 100.0
        );
        println!(
            "{:<24} {:>14.2} {:>14} {:>12.2}",
            "CHAM (paper)", cham_paper.0, "1.00x", cham_paper.1
        );
        println!(
            "{:<24} {:>14.2} {:>14} {:>12.2}",
            "FLASH (measured)",
            run.transform_latency_s * 1e3,
            times(run.speedup_vs_cham()),
            acc * 100.0
        );
        println!(
            "{:<24} {:>14.2} {:>14} {:>12.2}",
            "FLASH (paper)",
            flash_paper.0,
            times(flash_paper.1),
            flash_paper.2
        );
        println!(
            "accuracy drop: measured {:.2} pts vs paper {:.2} pts",
            (baseline_acc - acc) * 100.0,
            cham_paper.1 - flash_paper.2
        );
        println!("note: latency counts transform work (the accelerator's critical path);");
        println!(
            "      full-system latency incl. point-wise streaming: {:.2} ms",
            run.total_latency_s * 1e3
        );
    }
}
