//! Regenerates **Figure 12**: area and power breakdown of the FLASH
//! architecture by component.

use flash_bench::{banner, compare_row, pct, subhead};
use flash_hw::arch::FlashArch;
use flash_hw::cost::CostModel;

fn main() {
    banner("Figure 12: FLASH area & power breakdown");
    let arch = FlashArch::paper_default();
    let m = CostModel::cmos28();
    let b = arch.breakdown(&m);
    let total = b.total();

    subhead("components (60 approx PEs x4 BU, 4 FP PEs x4 BU, 128 FP MUL, 128 FP ACC)");
    println!(
        "{:<16} {:>12} {:>8} {:>12} {:>8}",
        "component", "area mm^2", "share", "power W", "share"
    );
    for (label, c) in b.rows() {
        println!(
            "{label:<16} {:>12.3} {:>8} {:>12.3} {:>8}",
            c.area_mm2(),
            pct(c.area_um2 / total.area_um2),
            c.power_w(),
            pct(c.power_mw / total.power_mw)
        );
    }
    println!(
        "{:<16} {:>12.3} {:>8} {:>12.3} {:>8}",
        "TOTAL",
        total.area_mm2(),
        "",
        total.power_w(),
        ""
    );

    subhead("vs the paper's Table III silicon rows");
    let weight = arch.weight_engine_cost(&m);
    compare_row(
        "weight-transform engine area (mm^2)",
        "0.74",
        format!("{:.2}", weight.area_mm2()),
    );
    compare_row(
        "weight-transform engine power (W)",
        "0.27",
        format!("{:.2}", weight.power_w()),
    );
    compare_row(
        "all transforms area (mm^2)",
        "4.22",
        format!("{:.2}", total.area_mm2()),
    );
    compare_row(
        "all transforms power (W)",
        "2.56",
        format!("{:.2}", total.power_w()),
    );
    println!();
    println!("paper's observation: after optimizing weight transforms, the point-wise");
    println!(
        "FP multipliers dominate ({} of power here) — the declared future-work bottleneck.",
        pct(b.fp_mul.power_mw / total.power_mw)
    );
}
