//! Supplementary analysis: weight-transform amortization across a batch.
//!
//! The paper computes weight transforms on the fly for every inference
//! (pre-computing all of ResNet-50's spectra would take ~23 GB). Across a
//! *batch*, however, each weight spectrum can be reused while it is live
//! in the pipeline: weight-transform work stays constant while the
//! FP-side work scales with the batch — which accelerates the paper's
//! own conclusion that the point-wise stage is the next bottleneck.

use flash_accel::config::FlashConfig;
use flash_accel::schedule::schedule_layer;
use flash_accel::workload::layer_workload;
use flash_bench::{banner, pct, subhead};
use flash_nn::resnet::resnet50_conv_layers;

fn main() {
    banner("Supplementary: batch amortization of weight transforms (ResNet-50)");
    let cfg = FlashConfig::paper_default();
    let net = resnet50_conv_layers();

    subhead("per-image engine cycles vs batch size");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>16}",
        "batch", "weight cyc/img", "fp cyc/img", "pw cyc/img", "weight share"
    );
    for batch in [1u64, 2, 4, 8, 16] {
        let mut weight = 0u64;
        let mut fp = 0u64;
        let mut pw = 0u64;
        for spec in &net.convs {
            let mut w = layer_workload(spec, cfg.n());
            // batch-B: activation/inverse/point-wise scale; weight
            // transforms amortize.
            w.act_transforms *= batch;
            w.inverse_transforms *= batch;
            w.pointwise *= batch;
            w.accum_adds *= batch;
            let perf = schedule_layer(&w, &cfg.arch, &cfg.pe);
            weight += perf.weight_cycles;
            fp += perf.fp_fft_cycles;
            pw += perf.pointwise_cycles;
        }
        let total = weight + fp + pw;
        println!(
            "{batch:>6} {:>14} {:>14} {:>14} {:>16}",
            weight / batch,
            fp / batch,
            pw / batch,
            pct(weight as f64 / total as f64)
        );
    }
    println!();
    println!("weight transforms amortize toward zero per image; the FP/point-wise");
    println!("side becomes the whole cost — the paper's declared future-work target.");
}
