//! Supplementary: *measured* network-level robustness on a synthetic CNN.
//!
//! Instead of the calibrated margin model, run an actual (random, W4A4)
//! CNN exact vs. with the approximate datapath's measured HConv error
//! injected into every convolution, and report argmax agreement — the
//! observable behind Table IV's "accuracy nearly unchanged".

use flash_accel::config::FlashConfig;
use flash_bench::{banner, pct, subhead};
use flash_fft::error::{monte_carlo_error, ErrorWorkload};
use flash_nn::synthetic::small_testnet;
use rand::SeedableRng;

fn main() {
    banner("Supplementary: synthetic-CNN argmax agreement under approximate HConv");
    let he = flash_he::HeParams::flash_default();
    let wl = ErrorWorkload {
        weight_mag: 8,
        weight_nnz: 9,
        act_mag: (he.t / 2) as f64,
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let net = small_testnet(&mut rng);
    let samples = 150;

    subhead("operating points (error measured bit-accurately, then injected)");
    println!(
        "{:>4} {:>4} {:>14} {:>12} {:>12}",
        "dw", "k", "q-err std", "SP-err std", "agreement"
    );
    for (dw, k) in [
        (20u32, 2usize),
        (22, 3),
        (24, 4),
        (27, 5),
        (27, 18),
        (33, 18),
    ] {
        let cfg = FlashConfig::numerics_for(he.n, dw, k);
        let mut erng = rand::rngs::StdRng::seed_from_u64(dw as u64 * 131 + k as u64);
        let err = monte_carlo_error(&cfg, wl, 2, &mut erng);
        let sp_std = err.variance.sqrt() * he.t as f64 / he.q as f64;
        let agreement = net.agreement(&[sp_std; 3], samples, &mut rng);
        let marker = if dw == 27 && k == 5 { "  <- FLASH" } else { "" };
        println!(
            "{dw:>4} {k:>4} {:>14.1} {:>12.3} {:>12}{marker}",
            err.variance.sqrt(),
            sp_std,
            pct(agreement)
        );
    }

    subhead("stress: scaled-up error (what failing the layer budget looks like)");
    for scale in [100.0f64, 1_000.0, 10_000.0] {
        let agreement = net.agreement(&[scale; 3], samples, &mut rng);
        println!("SP error std {scale:>8.0}: agreement {:>7}", pct(agreement));
    }
    println!();
    println!("paper: 74.24% -> 74.19% (ResNet-50) and 68.45% -> 68.15% (ResNet-18) —");
    println!("i.e. ~100% classification agreement at the FLASH operating point, which");
    println!("the measured synthetic agreement reproduces.");
}
