//! Regenerates **Figure 1**: latency breakdown of one ResNet-50 residual
//! block under a software (CPU) execution of the Cheetah-style protocol.
//!
//! We time this reproduction's own BFV kernels at `N = 4096` (exact NTT
//! path, as Cheetah uses) and multiply by the block's transform counts.
//! Absolute seconds differ from the paper's SEAL-on-Xeon measurement; the
//! *shares* — weight NTTs dominating HConv — are the reproduced result.

use flash_bench::{banner, pct, subhead, Timer};
use flash_he::HeParams;
use flash_nn::resnet::resnet50_residual_block;
use flash_ntt::transform::{forward, inverse, pointwise_mul_acc};

fn main() {
    banner("Figure 1: ResNet-50 residual block, software HConv breakdown");
    let p = HeParams::flash_default();
    let n = p.n;

    // Time one forward NTT / inverse NTT / point-wise pass.
    let mut buf: Vec<u64> = (0..n as u64).map(|i| i * 7919 % p.q).collect();
    let reps = 50;
    let t = Timer::new();
    for _ in 0..reps {
        forward(&mut buf, p.ntt());
    }
    let t_ntt = t.elapsed_s() / reps as f64;
    let t2 = Timer::new();
    for _ in 0..reps {
        inverse(&mut buf, p.ntt());
    }
    let t_intt = t2.elapsed_s() / reps as f64;
    let a = buf.clone();
    let b: Vec<u64> = buf.iter().rev().copied().collect();
    let mut acc = vec![0u64; n];
    let t3 = Timer::new();
    for _ in 0..reps {
        pointwise_mul_acc(&mut acc, &a, &b, p.ntt());
    }
    let t_pw = t3.elapsed_s() / reps as f64;

    subhead("per-op software cost");
    println!(
        "forward NTT: {:.1} us, inverse NTT: {:.1} us, pointwise MAC pass: {:.1} us",
        t_ntt * 1e6,
        t_intt * 1e6,
        t_pw * 1e6
    );

    // Transform counts of the residual block.
    let mut weight_t = 0u64;
    let mut act_t = 0u64;
    let mut inv_t = 0u64;
    let mut pw = 0u64;
    for spec in resnet50_residual_block() {
        let w = flash_accel::workload::layer_workload(&spec, n);
        weight_t += w.weight_transforms;
        act_t += w.act_transforms;
        inv_t += w.inverse_transforms;
        pw += w.pointwise / n as u64; // point-wise passes over N points
    }

    let weight_s = weight_t as f64 * t_ntt;
    let act_s = act_t as f64 * t_ntt;
    let inv_s = inv_t as f64 * t_intt;
    let pw_s = pw as f64 * t_pw;
    let total = weight_s + act_s + inv_s + pw_s;

    subhead("block breakdown (computation only)");
    println!(
        "weight NTTs:      {weight_t:>7} transforms  {:>8.1} ms  {:>6}",
        weight_s * 1e3,
        pct(weight_s / total)
    );
    println!(
        "activation NTTs:  {act_t:>7} transforms  {:>8.1} ms  {:>6}",
        act_s * 1e3,
        pct(act_s / total)
    );
    println!(
        "inverse NTTs:     {inv_t:>7} transforms  {:>8.1} ms  {:>6}",
        inv_s * 1e3,
        pct(inv_s / total)
    );
    println!(
        "point-wise MACs:  {pw:>7} passes      {:>8.1} ms  {:>6}",
        pw_s * 1e3,
        pct(pw_s / total)
    );
    println!();
    println!("paper's observation: computation (not communication) dominates, and");
    println!("within it the weight-polynomial NTTs are the bottleneck.");
    println!(
        "reproduced: weight NTTs take {} of block computation (paper: the dominant share)",
        pct(weight_s / total)
    );
    assert!(weight_s / total > 0.5, "weight NTTs must dominate");

    // Communication latency of the same block at LAN conditions
    // (3 Gbps, 1 ms RTT, the regime of the paper's Figure 1).
    subhead("communication vs computation (LAN: 3 Gbps, 1 ms RTT)");
    let ct_bytes = 2 * n * 5;
    let he = flash_2pc::nonlinear::NonlinearModel::cheetah(21);
    let mut comm_bytes = 0f64;
    let mut nl_elems = 0u64;
    for spec in resnet50_residual_block() {
        let w = flash_accel::workload::layer_workload(&spec, n);
        let cts = w.act_transforms / 2 + w.inverse_transforms / 2;
        comm_bytes += (cts * ct_bytes as u64) as f64;
        nl_elems += (spec.m * spec.out_h() * spec.out_w()) as u64;
    }
    comm_bytes += he.layer_bytes(nl_elems);
    let comm_s = comm_bytes * 8.0 / 3e9 + 0.001 * 8.0; // transfers + a few rounds
    println!(
        "ciphertexts + non-linear 2PC: {:.1} MB -> {:.0} ms vs computation {:.0} ms",
        comm_bytes / 1e6,
        comm_s * 1e3,
        total * 1e3
    );
    println!(
        "computation share of block latency: {} (paper: computation dominates)",
        pct(total / (total + comm_s))
    );
}
