//! Regenerates **Table III**: area/power efficiency of FLASH vs published
//! HE accelerators, on the ResNet-50 HConv workload.

use flash_accel::config::FlashConfig;
use flash_bench::{banner, subhead, times};
use flash_hw::arch::FlashArch;
use flash_hw::baselines::{paper_flash_rows, published_baselines};
use flash_hw::cost::CostModel;
use flash_hw::throughput::{array_mops, Efficiency};
use flash_nn::resnet::resnet50_conv_layers;
use flash_sparse::schedule::PeModel;

fn main() {
    banner("Table III: HConv efficiency comparison (ResNet-50, N = 2^12)");
    let cfg = FlashConfig::paper_default();
    let arch = FlashArch::paper_default();
    let model = CostModel::cmos28();
    let pe = PeModel::default();

    // Workload-average sparse cycles per weight transform on ResNet-50.
    let net = resnet50_conv_layers();
    let mut transforms = 0u64;
    let mut cycles = 0u64;
    let mut t33 = 0u64;
    let mut c33 = 0u64;
    for spec in &net.convs {
        let w = flash_accel::workload::layer_workload(spec, cfg.n());
        let each = w.weight_mults_sparse_each.div_ceil(pe.bus_per_pe as u64)
            + 11 * pe.stage_overhead as u64;
        transforms += w.weight_transforms;
        cycles += w.weight_transforms * each;
        if spec.k == 3 {
            t33 += w.weight_transforms;
            c33 += w.weight_transforms * each;
        }
    }
    let avg_cycles = cycles as f64 / transforms as f64;
    let avg_cycles_33 = c33 as f64 / t33 as f64;
    let weight_mops = array_mops(arch.approx_pes, avg_cycles, arch.freq_ghz, 1.0);
    let weight_cost = arch.weight_engine_cost(&model);
    let weight_eff = Efficiency {
        mops: weight_mops,
        area_mm2: weight_cost.area_mm2(),
        power_w: weight_cost.power_w(),
    };

    // FP array adds its dense-transform rate for the "all transforms" row.
    let dense_cycles = (cfg.n() as f64 / 2.0 / 2.0 * 11.0) / pe.bus_per_pe as f64 + 22.0;
    let fp_mops = array_mops(arch.fp_pes, dense_cycles, arch.freq_ghz, 1.0);
    let total_cost = arch.total_cost(&model);
    let all_eff = Efficiency {
        mops: weight_mops + fp_mops,
        area_mm2: total_cost.area_mm2(),
        power_w: total_cost.power_w(),
    };

    subhead("rows (MOPS | mm^2 | W | MOPS/mm^2 | MOPS/W)");
    println!(
        "{:<28} {:>9} {:>8} {:>8} {:>11} {:>9}",
        "accelerator", "MOPS", "mm^2", "W", "MOPS/mm^2", "MOPS/W"
    );
    for r in published_baselines() {
        match r.efficiency() {
            Some(e) => println!(
                "{:<28} {:>9.2} {:>8.2} {:>8.2} {:>11.2} {:>9.2}",
                format!("{} ({} N=2^{})", r.name, r.technology, (r.n as f64).log2()),
                r.mops,
                e.area_mm2,
                e.power_w,
                e.area_eff(),
                e.power_eff()
            ),
            None => println!(
                "{:<28} {:>9.2} {:>8} {:>8} {:>11} {:>9}",
                format!("{} ({} N=2^{})", r.name, r.technology, (r.n as f64).log2()),
                r.mops,
                "-",
                "-",
                "-",
                "-"
            ),
        }
    }
    // A conservative row using only the 3x3 layers (whose ~85-87 %
    // dataflow reduction matches the paper's quoted >86 %; our aligned
    // encoding makes 1x1 transforms far cheaper than the paper's
    // average, so the mixed row overshoots).
    let weight_eff_33 = Efficiency {
        mops: array_mops(arch.approx_pes, avg_cycles_33, arch.freq_ghz, 1.0),
        area_mm2: weight_cost.area_mm2(),
        power_w: weight_cost.power_w(),
    };
    for (label, e, paper) in [
        (
            "FLASH weight transforms",
            weight_eff,
            paper_flash_rows::WEIGHT,
        ),
        (
            "FLASH weight (3x3 layers)",
            weight_eff_33,
            paper_flash_rows::WEIGHT,
        ),
        ("FLASH all transforms", all_eff, paper_flash_rows::ALL),
    ] {
        println!(
            "{label:<28} {:>9.2} {:>8.2} {:>8.2} {:>11.2} {:>9.2}",
            e.mops,
            e.area_mm2,
            e.power_w,
            e.area_eff(),
            e.power_eff()
        );
        println!(
            "{:<28} {:>9.2} {:>8.2} {:>8.2} {:>11.2} {:>9.2}",
            "  (paper)", paper.0, paper.1, paper.2, paper.3, paper.4
        );
    }

    subhead("improvement over the best/worst ASIC baselines");
    let asics: Vec<Efficiency> = published_baselines()
        .iter()
        .filter_map(|r| r.efficiency())
        .collect();
    let pe_min = asics
        .iter()
        .map(|e| e.power_eff())
        .fold(f64::INFINITY, f64::min);
    let pe_max = asics.iter().map(|e| e.power_eff()).fold(0.0, f64::max);
    println!(
        "weight transforms power efficiency: {} ~ {}  (paper: 81.8x ~ 90.7x)",
        times(weight_eff.power_eff() / pe_max),
        times(weight_eff.power_eff() / pe_min)
    );
    println!(
        "all transforms power efficiency:    {} ~ {}  (paper: 8.7x ~ 9.7x)",
        times(all_eff.power_eff() / pe_max),
        times(all_eff.power_eff() / pe_min)
    );
    let ae_min = asics
        .iter()
        .map(|e| e.area_eff())
        .fold(f64::INFINITY, f64::min);
    let ae_max = asics.iter().map(|e| e.area_eff()).fold(0.0, f64::max);
    println!(
        "weight transforms area efficiency:  {} ~ {}  (paper: 15.6x ~ 26.2x)",
        times(weight_eff.area_eff() / ae_max),
        times(weight_eff.area_eff() / ae_min)
    );
    println!(
        "all transforms area efficiency:     {} ~ {}  (paper: 2.8x ~ 4.7x)",
        times(all_eff.area_eff() / ae_max),
        times(all_eff.area_eff() / ae_min)
    );
}
