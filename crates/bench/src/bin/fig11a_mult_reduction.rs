//! Regenerates **Figure 11(a)**: multiplications per polynomial
//! multiplication vs. sparsity, for three dataflows:
//!
//! * the classical dense butterfly network,
//! * FLASH's sparse (skipping + merging) dataflow,
//! * direct computation in the coefficient domain.
//!
//! As in the paper, counts are normalized to a single PolyMul of one
//! layer: the activation-side transforms are shared across output
//! channels, so their cost per PolyMul is amortized to near zero for the
//! FFT dataflows, while the direct method pays `nnz × N` every time.

use flash_accel::workload::layer_workload;
use flash_bench::{banner, pct, subhead};
use flash_nn::resnet::resnet50_conv_layers;
use flash_sparse::pattern::SparsityPattern;
use flash_sparse::symbolic::{analyze, twist_mults};

const N: usize = 4096;

fn sparse_mults(natural: &SparsityPattern) -> u64 {
    // fold to the FFT's half domain
    let half = natural.len() / 2;
    let folded = SparsityPattern::from_mask(
        (0..half)
            .map(|j| natural.get(j) || natural.get(j + half))
            .collect(),
    );
    analyze(&folded.bit_reversed()).mults() + twist_mults(&folded)
}

fn main() {
    banner("Figure 11(a): multiplication count per PolyMul vs sparsity");
    let m = N / 2;
    let dense = (m as u64 / 2) * (m as u64).trailing_zeros() as u64 + m as u64;

    subhead("synthetic sweep: structured (power-of-two grid) patterns");
    println!(
        "{:>9} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "nnz", "sparsity", "dense", "sparse", "direct", "reduction"
    );
    for log_nnz in [0u32, 2, 4, 6, 8, 10] {
        let nnz = 1usize << log_nnz;
        let stride = N / nnz;
        let p = SparsityPattern::from_indices(N, (0..nnz).map(|i| i * stride));
        let sp = sparse_mults(&p);
        let direct = (nnz * N) as u64;
        println!(
            "{nnz:>9} {:>10} {dense:>12} {sp:>12} {direct:>12} {:>10}",
            pct(p.sparsity()),
            pct(1.0 - sp as f64 / dense as f64)
        );
    }

    subhead("synthetic sweep: scattered (irregular) patterns");
    for nnz in [1usize, 9, 36, 144, 512] {
        let p = SparsityPattern::from_indices(
            N,
            (0..nnz)
                .map(|i| (i * 2654435761usize) % N)
                .collect::<std::collections::BTreeSet<_>>(),
        );
        let sp = sparse_mults(&p);
        println!(
            "{:>9} {:>10} {dense:>12} {sp:>12} {:>12} {:>10}",
            p.count(),
            pct(p.sparsity()),
            (p.count() * N) as u64,
            pct(1.0 - sp as f64 / dense as f64)
        );
    }

    subhead("ResNet-50 layers (aligned Cheetah encoding)");
    let net = resnet50_conv_layers();
    let mut total_sparse = 0u64;
    let mut total_dense = 0u64;
    println!(
        "{:<26} {:>9} {:>10} {:>12} {:>12} {:>10}",
        "layer", "k", "sparsity", "dense", "sparse", "reduction"
    );
    for l in &net.convs {
        let w = layer_workload(l, N);
        total_sparse += w.weight_mults_sparse();
        total_dense += w.weight_mults_dense();
        println!(
            "{:<26} {:>7}x{} {:>10} {:>12} {:>12} {:>10}",
            l.name,
            l.k,
            l.k,
            pct(w.sparsity),
            w.weight_mults_dense_each,
            w.weight_mults_sparse_each,
            pct(w.sparse_reduction())
        );
    }
    let overall = 1.0 - total_sparse as f64 / total_dense as f64;
    println!();
    println!(
        "overall weight-transform multiplication reduction: {} (paper: > 86%)",
        pct(overall)
    );
    assert!(overall > 0.8, "reduction should approach the paper's claim");
}
