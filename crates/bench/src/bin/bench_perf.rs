//! Machine-readable runtime benchmark: times the parallel hot paths at
//! one worker and at `max(4, host parallelism)` workers and writes
//! `BENCH_runtime.json`.
//!
//! Three thread-scaling benches (HConv layer, ResNet-18 network model,
//! DSE evaluation batch) plus the machine-independent plan-cache
//! cold/warm comparison. Thread speedups require physical cores: on a
//! single-core host the honest result is ~1x, which is why
//! `host_parallelism` is recorded alongside.
//!
//! The run always starts with the *hot-path* bench: a warm-cache,
//! single-thread HConv layer timed against the pre-optimization baseline
//! parsed from an existing `BENCH_runtime.json` (before this run
//! overwrites it), written to `BENCH_hotpath.json` together with the
//! scratch-pool hit counters. `--quick` runs only that section.

use flash_accel::config::FlashConfig;
use flash_accel::hconv::FlashHconv;
use flash_accel::inference::run_network;
use flash_bench::banner;
use flash_dse::bayesopt::random_search;
use flash_dse::{DesignSpace, Objective};
use flash_he::SecretKey;
use flash_nn::layers::ConvLayerSpec;
use flash_nn::quant::Quantizer;
use flash_nn::resnet18_conv_layers;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    threads: usize,
    median_ms: f64,
    speedup: f64,
}

/// The single-thread `hconv_layer` median recorded before the hot-path
/// optimizations landed, parsed from a pre-existing `BENCH_runtime.json`
/// so the hot-path bench can report an honest speedup. Falls back to the
/// checked-in pre-optimization figure when no artifact is present.
fn baseline_hconv_ms() -> f64 {
    const PRE_OPT_BASELINE_MS: f64 = 4.0895;
    let Ok(text) = std::fs::read_to_string("BENCH_runtime.json") else {
        return PRE_OPT_BASELINE_MS;
    };
    for line in text.lines() {
        if line.contains("\"hconv_layer\"") && line.contains("\"threads\": 1") {
            if let Some(pos) = line.find("\"median_ms\":") {
                let rest = &line[pos + "\"median_ms\":".len()..];
                let num: String = rest
                    .chars()
                    .skip_while(|c| c.is_whitespace())
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect();
                if let Ok(v) = num.parse() {
                    return v;
                }
            }
        }
    }
    PRE_OPT_BASELINE_MS
}

fn pool_stats_json(name: &str, s: flash_runtime::PoolStats) -> String {
    format!(
        "    \"{name}\": {{\"hits\": {}, \"misses\": {}, \"bytes_recycled\": {}, \"hit_rate\": {:.4}}}",
        s.hits,
        s.misses,
        s.bytes_recycled,
        s.hit_rate()
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    banner("Runtime benchmark: parallel hot paths + plan cache");
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let many = host.max(4);
    let mut rows: Vec<Row> = Vec::new();

    // --- HConv layer (functional engine, small parameters).
    let small = FlashConfig::test_small();
    let spec = ConvLayerSpec {
        name: "bench".into(),
        c: 4,
        h: 8,
        w: 8,
        m: 4,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let sk = SecretKey::generate(&small.he, &mut rng);
    let x = spec.sample_input(Quantizer::a4(), &mut rng);
    let w = spec.sample_weights(Quantizer::w4(), &mut rng);
    let engine = FlashHconv::new(small.clone());
    let hconv_run = |threads: usize| {
        flash_runtime::set_threads(threads);
        let mut lrng = StdRng::seed_from_u64(5);
        median_ms(5, || {
            let _ = engine.run_layer(&sk, &spec, &x, &w, &mut lrng);
        })
    };

    // --- Hot-path bench: warm-cache single-thread HConv vs the
    // pre-optimization baseline. Parse the baseline *before* anything
    // overwrites BENCH_runtime.json.
    let baseline = baseline_hconv_ms();
    flash_runtime::set_threads(1);
    {
        // Warm up: populate scratch pools and transform-plan caches so
        // the timed region measures the steady state the pools exist for.
        let mut wrng = StdRng::seed_from_u64(5);
        let _ = engine.run_layer(&sk, &spec, &x, &w, &mut wrng);
    }
    flash_runtime::U64_SCRATCH.reset_stats();
    flash_runtime::F64_SCRATCH.reset_stats();
    flash_runtime::I128_SCRATCH.reset_stats();
    flash_fft::C64_SCRATCH.reset_stats();
    let hot = {
        let mut lrng = StdRng::seed_from_u64(5);
        median_ms(5, || {
            let _ = engine.run_layer(&sk, &spec, &x, &w, &mut lrng);
        })
    };
    let speedup = baseline / hot;
    println!(
        "{:34} threads= 1  median {:9.3} ms  baseline {:9.3} ms  speedup {:5.2}x",
        "hconv_layer_hotpath", hot, baseline, speedup
    );
    let mut hot_json = String::from("{\n");
    hot_json.push_str("  \"bench\": \"hconv_layer_hotpath\",\n");
    hot_json.push_str("  \"threads\": 1,\n");
    hot_json.push_str("  \"warm_cache\": true,\n");
    hot_json.push_str(&format!("  \"median_ms\": {hot:.4},\n"));
    hot_json.push_str(&format!("  \"baseline_median_ms\": {baseline:.4},\n"));
    hot_json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    hot_json.push_str("  \"pool_stats\": {\n");
    let pools = [
        pool_stats_json("u64", flash_runtime::U64_SCRATCH.stats()),
        pool_stats_json("f64", flash_runtime::F64_SCRATCH.stats()),
        pool_stats_json("i128", flash_runtime::I128_SCRATCH.stats()),
        pool_stats_json("c64", flash_fft::C64_SCRATCH.stats()),
    ];
    hot_json.push_str(&pools.join(",\n"));
    hot_json.push_str("\n  }\n}\n");
    std::fs::write("BENCH_hotpath.json", &hot_json).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");
    if quick {
        flash_runtime::set_threads(0);
        return;
    }
    let h1 = hconv_run(1);
    let hn = hconv_run(many);
    rows.push(Row {
        name: "hconv_layer",
        threads: 1,
        median_ms: h1,
        speedup: 1.0,
    });
    rows.push(Row {
        name: "hconv_layer",
        threads: many,
        median_ms: hn,
        speedup: h1 / hn,
    });

    // --- ResNet-18 network performance model at N = 4096. The symbolic
    // analysis memo is cleared per iteration so each run does the full
    // per-layer work the parallel fan-out is meant to hide.
    let cfg = FlashConfig::paper_default();
    let net = resnet18_conv_layers();
    let net_run = |threads: usize| {
        flash_runtime::set_threads(threads);
        median_ms(7, || {
            flash_sparse::symbolic::clear_analysis_cache();
            let _ = run_network(&net, &cfg);
        })
    };
    let n1 = net_run(1);
    let nn = net_run(many);
    rows.push(Row {
        name: "run_network_resnet18",
        threads: 1,
        median_ms: n1,
        speedup: 1.0,
    });
    rows.push(Row {
        name: "run_network_resnet18",
        threads: many,
        median_ms: nn,
        speedup: n1 / nn,
    });

    // --- Memoization win on the same model (warm memo, any threads).
    flash_runtime::set_threads(1);
    let warm = median_ms(7, || {
        let _ = run_network(&net, &cfg);
    });
    rows.push(Row {
        name: "run_network_resnet18_warm_cache",
        threads: 1,
        median_ms: warm,
        speedup: n1 / warm,
    });

    // --- DSE candidate batch (256 analytical evaluations).
    let objective = Objective::from_layer(DesignSpace::flash_default(2048), 9, 8.0, 1024.0);
    let dse_run = |threads: usize| {
        flash_runtime::set_threads(threads);
        let mut drng = StdRng::seed_from_u64(23);
        median_ms(5, || {
            let _ = random_search(&objective, 256, &mut drng);
        })
    };
    let d1 = dse_run(1);
    let dn = dse_run(many);
    rows.push(Row {
        name: "dse_eval_batch",
        threads: 1,
        median_ms: d1,
        speedup: 1.0,
    });
    rows.push(Row {
        name: "dse_eval_batch",
        threads: many,
        median_ms: dn,
        speedup: d1 / dn,
    });
    flash_runtime::set_threads(0);

    // --- Report.
    for r in &rows {
        println!(
            "{:34} threads={:2}  median {:9.3} ms  speedup {:5.2}x",
            r.name, r.threads, r.median_ms, r.speedup
        );
    }
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"threads_compared\": [1, {many}],\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"median_ms\": {:.4}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.threads,
            r.median_ms,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("\nwrote BENCH_runtime.json");
}
