//! Machine-readable runtime benchmark: times the parallel hot paths at
//! one worker and at host parallelism and writes `BENCH_runtime.json`.
//!
//! Three thread-scaling benches (HConv layer, ResNet-18 network model,
//! DSE evaluation batch) plus the machine-independent plan-cache
//! cold/warm comparison. Thread speedups require physical cores, so
//! thread counts above `host_parallelism` are skipped (they only measure
//! scheduler noise) and every artifact records the host parallelism and
//! git revision it was produced on.
//!
//! The run always starts with the *hot-path* bench: a warm-cache,
//! single-thread HConv layer timed against the pre-optimization baseline
//! parsed from an existing `BENCH_runtime.json` (before this run
//! overwrites it), written to `BENCH_hotpath.json` together with the
//! scratch-pool hit counters. It is followed by the *sparse* bench —
//! compiled µop-tape weight transforms vs the dense FFT, at kernel level
//! and end-to-end — written to `BENCH_sparse.json` with the plan-cache
//! counters — and the *SIMD A/B* bench — the same layer with the scalar
//! fallback forced vs the active dispatch tier, with the
//! activation/inverse FFT stage medians, written to `BENCH_simd.json`.
//! `--quick` runs only those three sections. `--no-simd` forces the
//! scalar fallback for the whole run (the external A/B switch).
//!
//! `--check-regression` measures nothing new: it re-times the hot-path,
//! sparse-path, and SIMD-dispatch HConv medians, the power-of-two MAC
//! kernel, the serving layer's batched cost per request (the
//! `bench_serve` wave, same fixture), and the end-to-end private
//! inference fixture (the `bench_e2e` synthetic sample) and fails
//! (exit 1) if any is more than 15 % slower than the committed
//! `BENCH_hotpath.json` / `BENCH_sparse.json` / `BENCH_simd.json` /
//! `BENCH_backends.json` / `BENCH_serve.json` / `BENCH_e2e.json`
//! baselines. The artifacts
//! carry a `calib_ms`
//! field — the median of a fixed pure-ALU calibration loop measured in
//! the same invocation — and the gate divides each ratio by the current
//! host's calibration ratio, so CPU-frequency drift between the
//! baseline run and the check run cancels instead of masquerading as a
//! code regression (or hiding one).
//!
//! Every artifact embeds a `"telemetry"` section — the unified
//! `flash_telemetry::snapshot()` tree of per-stage span histograms
//! (non-zero only when built with `--features telemetry`), protocol
//! counters, and the plan-cache/scratch-pool statistics. `--stages`
//! runs the warm single-thread HConv layer alone and prints the
//! per-stage latency table.
//!
//! `--backends` runs the ciphertext-backend A/B suite instead of the
//! thread-scaling benches and writes `BENCH_backends.json`: the
//! MAC-kernel comparison (Harvey-lazy Shoup MAC + Barrett drain on the
//! prime modulus vs the wrapping MAC + mask drain on `q = 2^62`, same
//! degree and drain cadence — gated at ≥ 1.3× for the wrapping side)
//! and the protocol-level matrix timing exact-NTT vs approx-FFT vs
//! Pow2 end-to-end with the composed noise headroom and the guard's
//! fallback counts per cell. `--backends --quick` runs the kernel plus
//! the small matrix layer only, skips the speedup gate, and leaves the
//! committed artifact untouched (the CI smoke).

use flash_2pc::{conv_band_noise_bound, expected_conv_mod, ConvProtocol};
use flash_accel::config::FlashConfig;
use flash_accel::hconv::FlashHconv;
use flash_accel::inference::run_network;
use flash_bench::banner;
use flash_bench::perf::{
    calibration_ms, git_revision, median_ms, parse_json_number, simd_json, warm_up,
};
use flash_bench::{chaos, serving};
use flash_dse::bayesopt::random_search;
use flash_dse::{DesignSpace, Objective};
use flash_he::encoding::{ConvEncoder, ConvShape};
use flash_he::{HeParams, PolyMulBackend, SecretKey};
use flash_hw::arch::FlashArch;
use flash_math::modular::Barrett;
use flash_math::pow2;
use flash_math::C64;
use flash_nn::layers::ConvLayerSpec;
use flash_nn::quant::Quantizer;
use flash_nn::resnet18_conv_layers;
use flash_ntt::transform::pointwise_mul_acc_shoup_lazy;
use flash_runtime::simd::{self, SimdLevel};
use flash_serve::BatchPolicy;
use flash_sparse::schedule::PeModel;
use flash_sparse::{SparsePlan, SparsityPattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A `(calib_ms, median_ms)` pair for the fixture layer: three
/// alternating attempts, keeping each value's minimum *independently*.
/// The artifact's job is to record the uncontended cost of both
/// workloads — the regression gate divides a fresh calibration by
/// `calib_ms` to estimate how much slower the current host is than the
/// baseline host, and a contention burst baked into either committed
/// value would skew every future comparison. Contention only ever adds
/// time, so the per-value minimum over spaced attempts is the estimator
/// of the quiet cost.
fn paired_median(fixture: &HconvFixture, engine: &FlashHconv, reps: usize) -> (f64, f64) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        best.0 = best.0.min(calibration_ms());
        best.1 = best.1.min(fixture.median(engine, reps));
    }
    best
}

struct Row {
    name: &'static str,
    threads: usize,
    median_ms: f64,
    speedup: f64,
}

/// The single-thread `hconv_layer` median recorded before the hot-path
/// optimizations landed, parsed from a pre-existing `BENCH_runtime.json`
/// so the hot-path bench can report an honest speedup. Falls back to the
/// checked-in pre-optimization figure when no artifact is present.
fn baseline_hconv_ms() -> f64 {
    const PRE_OPT_BASELINE_MS: f64 = 4.0895;
    let Ok(text) = std::fs::read_to_string("BENCH_runtime.json") else {
        return PRE_OPT_BASELINE_MS;
    };
    for line in text.lines() {
        if line.contains("\"hconv_layer\"") && line.contains("\"threads\": 1") {
            if let Some(pos) = line.find("\"median_ms\":") {
                let rest = &line[pos + "\"median_ms\":".len()..];
                let num: String = rest
                    .chars()
                    .skip_while(|c| c.is_whitespace())
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect();
                if let Ok(v) = num.parse() {
                    return v;
                }
            }
        }
    }
    PRE_OPT_BASELINE_MS
}

fn pool_stats_json(name: &str, s: flash_runtime::PoolStats) -> String {
    format!(
        "    \"{name}\": {{\"hits\": {}, \"misses\": {}, \"bytes_recycled\": {}, \"hit_rate\": {:.4}}}",
        s.hits,
        s.misses,
        s.bytes_recycled,
        s.hit_rate()
    )
}

/// The small HConv layer every HConv timing in this binary runs.
struct HconvFixture {
    cfg: FlashConfig,
    spec: ConvLayerSpec,
    sk: SecretKey,
    x: Vec<i64>,
    w: Vec<i64>,
}

impl HconvFixture {
    fn new() -> Self {
        let cfg = FlashConfig::test_small();
        let spec = ConvLayerSpec {
            name: "bench".into(),
            c: 4,
            h: 8,
            w: 8,
            m: 4,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let sk = SecretKey::generate(&cfg.he, &mut rng);
        let x = spec.sample_input(Quantizer::a4(), &mut rng);
        let w = spec.sample_weights(Quantizer::w4(), &mut rng);
        Self {
            cfg,
            spec,
            sk,
            x,
            w,
        }
    }

    /// The SIMD fixture: production ring degree (`N = 4096`, the paper's
    /// operating point) and a layer whose spatial extent forces the row-
    /// band encoding — `w = 128` (row stride 128, so 32 input rows fit a
    /// tile and `k = 3` leaves 30 output rows per band) and `h = 120`
    /// give 4 bands, and `c = 2` single-channel groups give 2 groups.
    /// That makes 8 activation polynomials and 8-polynomial inverse
    /// batches per output channel — full lane occupancy for the widest
    /// (8-lane) spectral kernels, which the `test_small` fixture
    /// (`N = 256`, one band) never reaches.
    ///
    /// Parameters deviate from `paper_default` in one deliberate way:
    /// `t = 2^13` (ample for 4-bit quantized sums, |Σxw| < 1.9k) and a
    /// near-exact weight datapath (50-bit words, `k = 30` twiddles), so
    /// the §5f noise guard never reroutes bands to the exact-NTT
    /// backend — verified by this layer returning the plaintext conv
    /// bit-exactly with `ntt_fallbacks == 0`. At the paper's
    /// `t = 2^21`/27-bit/`k = 5` point this layer trips the guard for
    /// most bands, and the A/B would time the fallback path instead of
    /// the batched FFT kernels it exists to gate.
    fn simd() -> Self {
        let he = HeParams::new(4096, 36, 1 << 13, 3.2);
        let cfg = FlashConfig {
            arch: FlashArch::paper_default(),
            pe: PeModel::default(),
            numerics: FlashConfig::numerics_for(he.n, 50, 30),
            he,
        };
        let spec = ConvLayerSpec {
            name: "bench-simd".into(),
            c: 2,
            h: 116,
            w: 128,
            m: 2,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut rng = StdRng::seed_from_u64(13);
        let sk = SecretKey::generate(&cfg.he, &mut rng);
        let x = spec.sample_input(Quantizer::a4(), &mut rng);
        let w = spec.sample_weights(Quantizer::w4(), &mut rng);
        Self {
            cfg,
            spec,
            sk,
            x,
            w,
        }
    }

    /// Warm-cache single-thread timing of `engine` on the fixture layer:
    /// the minimum over four median-of-`reps` batches.
    ///
    /// Scheduler interference on a shared host is additive and bursty —
    /// a preemption burst can poison a whole batch of sub-millisecond
    /// reps, but never makes a run *faster*. The minimum over several
    /// spaced batches is therefore the stable estimator of the code's
    /// true cost; a single median swings by almost 2x run-to-run here.
    /// Baseline generation and the regression gate share this method, so
    /// both sides of the comparison use the same estimator.
    fn median(&self, engine: &FlashHconv, reps: usize) -> f64 {
        let mut wrng = StdRng::seed_from_u64(5);
        warm_up(200, 3, || {
            engine
                .run_layer(&self.sk, &self.spec, &self.x, &self.w, &mut wrng)
                .expect("bench protocol run failed");
        });
        let mut lrng = StdRng::seed_from_u64(5);
        (0..4)
            .map(|_| {
                median_ms(reps, || {
                    engine
                        .run_layer(&self.sk, &self.spec, &self.x, &self.w, &mut lrng)
                        .expect("bench protocol run failed");
                })
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// Re-measures the committed baselines and fails on > 15 %
/// calibration-normalized slowdown.
fn check_regression() -> i32 {
    banner("Regression check: fresh medians vs committed baselines");
    const TOLERANCE: f64 = 1.15;
    flash_runtime::set_threads(1);
    let fixture = HconvFixture::new();
    let engine = FlashHconv::new(fixture.cfg.clone());
    let simd_fixture = HconvFixture::simd();
    let simd_engine = FlashHconv::new(simd_fixture.cfg.clone());
    let mut failures = 0;
    let mut check = |name: &str, file: &str, key: &str, measure: &mut dyn FnMut() -> f64| {
        match std::fs::read_to_string(file) {
            Err(_) => println!("{name:34} no baseline ({file} missing); skipped"),
            Ok(text) => match parse_json_number(&text, key) {
                None => println!("{name:34} no baseline ({file} missing {key}); skipped"),
                Some(base) => {
                    let base_calib = parse_json_number(&text, "calib_ms").filter(|c| *c > 0.0);
                    // Each attempt pairs the benchmark measurement with a
                    // calibration run taken moments before it, and scores
                    // the *smaller* of the raw wall-clock ratio and the
                    // host-speed-normalized ratio. On a quiet host the raw
                    // ratio is exact; under shared-host contention the
                    // normalized ratio divides the slowdown out. (The two
                    // workloads don't slow by identical factors, so either
                    // alone false-fails; a genuine code regression inflates
                    // both, on every attempt.) Up to five attempts, spaced
                    // out so they sample different contention states —
                    // bursts here last seconds.
                    let (mut fresh, mut speed, mut ratio) = (f64::INFINITY, 1.0, f64::INFINITY);
                    for attempt in 0..5 {
                        if attempt > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(500));
                        }
                        // Clamped at 1: a slower host is excused, a faster
                        // host never flatters the ratio.
                        let s = base_calib.map_or(1.0, |bc| calibration_ms() / bc).max(1.0);
                        let f = measure();
                        let r = f / base / s;
                        if r < ratio {
                            (fresh, speed, ratio) = (f, s, r);
                        }
                        if ratio <= TOLERANCE {
                            break;
                        }
                    }
                    let ok = ratio <= TOLERANCE;
                    println!(
                    "{name:34} fresh {fresh:9.3} ms  baseline {base:9.3} ms  host speed {speed:5.2}x  ratio {ratio:5.2}  {}",
                    if ok { "OK" } else { "REGRESSION" }
                );
                    if !ok {
                        failures += 1;
                    }
                }
            },
        }
    };
    check(
        "hconv_layer_hotpath",
        "BENCH_hotpath.json",
        "median_ms",
        &mut || fixture.median(&engine, 5),
    );
    check(
        "hconv_layer_sparse",
        "BENCH_sparse.json",
        "hconv_sparse_median_ms",
        &mut || fixture.median(&engine, 5),
    );
    check(
        "hconv_layer_simd",
        "BENCH_simd.json",
        "hconv_simd_median_ms",
        &mut || simd_fixture.median(&simd_engine, 5),
    );
    check(
        "pow2_mac_kernel",
        "BENCH_backends.json",
        "pow2_mac_ms",
        &mut || pow2_mac_ms(),
    );
    // The end-to-end gate re-runs the `bench_e2e` fixture (one private
    // inference of the fixed synthetic CNN: HE convolutions over shares
    // plus the full 2PC non-linear stack) against the committed
    // `BENCH_e2e.json` baseline.
    check(
        "e2e_private_fixture",
        "BENCH_e2e.json",
        "fixture_ms",
        &mut flash_accel::e2e::fixture_run_ms,
    );
    // The serving gate re-runs the exact wave shape the committed
    // `BENCH_serve.json` was produced from (same fixture module, same
    // fleet size parsed back out of the artifact) and compares the
    // batched-mode cost per request.
    let serve_clients = std::fs::read_to_string("BENCH_serve.json")
        .ok()
        .and_then(|t| parse_json_number(&t, "clients"))
        .map_or(256, |c| c as u64)
        .max(1);
    check(
        "serve_batched_per_request",
        "BENCH_serve.json",
        "batched_ms_per_req",
        &mut || serving::run_wave(BatchPolicy::batched(), 1, serve_clients, 2, false).ms_per_req(),
    );
    // The chaos gate re-runs the clean baseline cell of the committed
    // `BENCH_chaos.json` grid (no faults, no overload, no poison, fleet
    // size parsed back out of the artifact): the cost per request of
    // the fully-armed resilience path — deadline checks, admission
    // gate, containment boundary, watchdog — on healthy traffic.
    let chaos_sessions = std::fs::read_to_string("BENCH_chaos.json")
        .ok()
        .and_then(|t| parse_json_number(&t, "sessions"))
        .map_or(192, |c| c as u64)
        .max(4);
    check(
        "serve_chaos_clean_path",
        "BENCH_chaos.json",
        "clean_ms_per_req",
        &mut || {
            chaos::run_cell(
                &chaos::CellSpec {
                    name: "baseline",
                    fault_fraction: 0.0,
                    overload_x: 1.0,
                    poison: false,
                },
                chaos_sessions,
                2,
                1,
            )
            .ms_per_req()
        },
    );
    flash_runtime::set_threads(0);
    if failures > 0 {
        println!("\nregression check FAILED ({failures} benchmark(s) > 15% slower)");
        1
    } else {
        println!("\nregression check passed");
        0
    }
}

/// The sparse-transform bench: kernel-level tape vs dense FFT on a
/// ResNet-style 3×3 pattern at production degree, end-to-end HConv with
/// the sparse path on vs off, and the plan-cache counters. Returns the
/// `BENCH_sparse.json` payload.
fn sparse_bench(fixture: &HconvFixture, host: usize, rev: &str) -> String {
    // --- Kernel: the weight-transform pattern a 3×3 conv over 32×32
    // feature maps (4 channels packed per ciphertext) produces at
    // N = 4096 — the shape of ResNet's early conv blocks under Cheetah
    // encoding. The pattern comes from the real encoder, not a synthetic
    // mask, so the measured sparsity is the protocol's.
    let n = 4096;
    let shape = ConvShape {
        c: 4,
        h: 32,
        w: 32,
        m: 1,
        k: 3,
    };
    let enc = ConvEncoder::new(shape, n);
    let half = n / 2;
    let mut mask = vec![false; half];
    for idx in enc.weight_indices(0) {
        mask[idx % half] = true;
    }
    let pattern = SparsityPattern::from_mask(mask);
    let plan = SparsePlan::shared(&pattern);
    assert!(plan.worthwhile(), "bench pattern must take the sparse path");

    let mut krng = StdRng::seed_from_u64(41);
    let mut w = vec![0i64; n];
    for idx in enc.weight_indices(0) {
        w[idx] = krng.gen_range(-8..8);
    }
    let wf: Vec<f64> = w.iter().map(|&x| x as f64).collect();
    let fft = flash_fft::NegacyclicFft::new(n);
    let mut out = vec![C64::ZERO; half];
    const KERNEL_ITERS: usize = 200;
    // Warm both paths, then time the same batch of transforms.
    fft.forward_into(&wf, &mut out);
    plan.execute_into(&w, &mut out);
    let dense_ms = median_ms(7, || {
        for _ in 0..KERNEL_ITERS {
            fft.forward_into(&wf, &mut out);
        }
    });
    let sparse_ms = median_ms(7, || {
        for _ in 0..KERNEL_ITERS {
            plan.execute_into(&w, &mut out);
        }
    });
    let kernel_speedup = dense_ms / sparse_ms;
    println!(
        "{:34} n={n}  live {}/{}  dense {:8.2} us  tape {:8.2} us  speedup {:5.2}x",
        "weight_transform_3x3_kernel",
        pattern.count(),
        pattern.len(),
        dense_ms / KERNEL_ITERS as f64 * 1e3,
        sparse_ms / KERNEL_ITERS as f64 * 1e3,
        kernel_speedup
    );

    // --- End-to-end: the hot-path HConv layer with the sparse weight
    // path on vs off (identical outputs, same protocol, same seeds).
    // Fresh telemetry window so the embedded stage breakdown covers the
    // sparse-vs-dense comparison, not the preceding kernel loops.
    flash_telemetry::reset();
    let sparse_engine = FlashHconv::new(fixture.cfg.clone());
    let dense_engine = FlashHconv::new(fixture.cfg.clone()).with_sparse_weights(false);
    // Calibration paired with the end-to-end timing (not with process
    // start): the regression gate divides by this value, so it must
    // reflect the host-contention state of *this* measurement.
    let (calib, hconv_sparse) = paired_median(fixture, &sparse_engine, 5);
    let hconv_dense = fixture.median(&dense_engine, 5);
    let mut srng = StdRng::seed_from_u64(5);
    let (_, stats) = sparse_engine
        .run_layer(
            &fixture.sk,
            &fixture.spec,
            &fixture.x,
            &fixture.w,
            &mut srng,
        )
        .expect("regression run failed");
    println!(
        "{:34} sparse {:9.3} ms  dense {:9.3} ms  speedup {:5.2}x  ({}/{} transforms on tape)",
        "hconv_layer_sparse_vs_dense",
        hconv_sparse,
        hconv_dense,
        hconv_dense / hconv_sparse,
        stats.sparse_weight_transforms,
        stats.weight_transforms
    );

    // --- Plan-cache counters (satellites the pool stats already have).
    let metrics = flash_sparse::plan::plan_cache_metrics();
    println!(
        "{:34} plans {}  uops {}  tape {} B  hit_rate {:.4}",
        "sparse_plan_cache",
        metrics.plans,
        metrics.uops,
        metrics.tape_bytes,
        hit_rate(metrics.stats)
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"git_revision\": \"{rev}\",\n"));
    json.push_str(&simd_json());
    json.push_str(&format!("  \"calib_ms\": {calib:.4},\n"));
    json.push_str("  \"kernel\": {\n");
    json.push_str("    \"name\": \"weight_transform_3x3_resnet_style\",\n");
    json.push_str(&format!("    \"n\": {n},\n"));
    json.push_str(&format!(
        "    \"pattern_live_slots\": {},\n",
        pattern.count()
    ));
    json.push_str(&format!("    \"pattern_slots\": {},\n", pattern.len()));
    json.push_str(&format!("    \"tape_muls\": {},\n", plan.muls()));
    json.push_str(&format!("    \"dense_muls\": {},\n", plan.dense_muls()));
    json.push_str(&format!(
        "    \"dense_median_us\": {:.3},\n",
        dense_ms / KERNEL_ITERS as f64 * 1e3
    ));
    json.push_str(&format!(
        "    \"sparse_median_us\": {:.3},\n",
        sparse_ms / KERNEL_ITERS as f64 * 1e3
    ));
    json.push_str(&format!("    \"speedup\": {kernel_speedup:.3}\n"));
    json.push_str("  },\n");
    json.push_str(&format!("  \"hconv_dense_median_ms\": {hconv_dense:.4},\n"));
    json.push_str(&format!(
        "  \"hconv_sparse_median_ms\": {hconv_sparse:.4},\n"
    ));
    json.push_str(&format!(
        "  \"hconv_speedup\": {:.3},\n",
        hconv_dense / hconv_sparse
    ));
    json.push_str(&format!(
        "  \"sparse_weight_transforms\": {},\n",
        stats.sparse_weight_transforms
    ));
    json.push_str(&format!(
        "  \"weight_transforms\": {},\n",
        stats.weight_transforms
    ));
    json.push_str("  \"plan_cache\": {\n");
    json.push_str(&format!("    \"plans\": {},\n", metrics.plans));
    json.push_str(&format!("    \"uops\": {},\n", metrics.uops));
    json.push_str(&format!("    \"tape_bytes\": {},\n", metrics.tape_bytes));
    json.push_str(&format!("    \"hits\": {},\n", metrics.stats.hits));
    json.push_str(&format!("    \"misses\": {},\n", metrics.stats.misses));
    json.push_str(&format!(
        "    \"hit_rate\": {:.4}\n",
        hit_rate(metrics.stats)
    ));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"telemetry\": {}\n",
        flash_telemetry::snapshot().to_json(2)
    ));
    json.push_str("}\n");
    json
}

/// The SIMD A/B bench: the production-degree [`HconvFixture::simd`]
/// layer with the scalar fallback forced vs the active dispatch tier,
/// reporting both the end-to-end median and the per-span means of the
/// two batched spectral spans (`hconv.activation_fft`,
/// `hconv.inverse_fft`). The stage breakdown needs a
/// `--features telemetry` build; without it only the end-to-end A/B is
/// meaningful and the artifact says so. Returns the `BENCH_simd.json`
/// payload.
fn simd_bench(
    fixture: &HconvFixture,
    host: usize,
    rev: &str,
    run_level: Option<SimdLevel>,
) -> String {
    let engine = FlashHconv::new(fixture.cfg.clone());
    // (end_to_end_ms, activation_p50_ms, inverse_p50_ms, calib_ms)
    let side = |level: SimdLevel| {
        simd::force_level(Some(level));
        let mut wrng = StdRng::seed_from_u64(5);
        warm_up(200, 3, || {
            engine
                .run_layer(
                    &fixture.sk,
                    &fixture.spec,
                    &fixture.x,
                    &fixture.w,
                    &mut wrng,
                )
                .expect("bench protocol run failed");
        });
        flash_telemetry::reset();
        let (calib, e2e) = paired_median(fixture, &engine, 5);
        // Restore the run-wide override (`--no-simd`), not necessarily
        // auto-detection.
        simd::force_level(run_level);
        let snap = flash_telemetry::snapshot();
        // Histogram percentiles are log2-bucket midpoints — adjacent
        // buckets are exactly 2× apart, so a bucketed p50 cannot
        // resolve the very ratio this bench gates on. The mean over
        // every span instance in the timed window (total_ns / count)
        // has continuous resolution and, over dozens of identical
        // fixed-size batches, estimates the same central tendency.
        let mean_ms = |stage: &str| {
            snap.spans
                .iter()
                .find(|(name, _)| *name == stage)
                .map_or(0.0, |(_, h)| h.mean_ns() as f64 / 1e6)
        };
        (
            e2e,
            mean_ms("hconv.activation_fft"),
            mean_ms("hconv.inverse_fft"),
            calib,
            snap.enabled,
        )
    };
    let active = simd::level();
    let (e2e_off, act_off, inv_off, _, _) = side(SimdLevel::Scalar);
    let (e2e_on, act_on, inv_on, calib, telemetry) = side(active);
    let e2e_speedup = e2e_off / e2e_on;
    let stage_off = act_off + inv_off;
    let stage_on = act_on + inv_on;
    let stage_speedup = if stage_on > 0.0 {
        stage_off / stage_on
    } else {
        0.0
    };
    // Amdahl accounting: the two batched spectral stages are only a
    // fraction of the scalar end-to-end (the rest is encode, MAC,
    // mask, serialize — untouched by lane width), so a large stage
    // speedup must shrink to a small end-to-end one. Stamping the
    // shares and the predicted ceiling into the artifact makes that
    // arithmetic auditable instead of looking like a measurement bug.
    let share = |stage_ms: f64| {
        if e2e_off > 0.0 {
            stage_ms / e2e_off
        } else {
            0.0
        }
    };
    let (act_share, inv_share) = (share(act_off), share(inv_off));
    let stage_share = act_share + inv_share;
    let amdahl_predicted = if e2e_off > 0.0 && stage_off > 0.0 {
        // Serial-fraction form of Amdahl's law: only the stage time
        // shrinks (by the measured stage speedup), everything else
        // keeps its scalar cost.
        e2e_off / (e2e_off - stage_off + stage_on)
    } else {
        0.0
    };
    println!(
        "{:34} scalar {:9.3} ms  {} {:9.3} ms  speedup {:5.2}x (end-to-end)",
        "hconv_layer_simd_ab",
        e2e_off,
        active.name(),
        e2e_on,
        e2e_speedup
    );
    if telemetry {
        println!(
            "{:34} scalar {:9.4} ms  {} {:9.4} ms  speedup {:5.2}x (stage mean: activation+inverse)",
            "hconv_fft_stages_simd_ab",
            stage_off,
            active.name(),
            stage_on,
            stage_speedup
        );
        println!(
            "{:34} stages are {:.1}% of scalar e2e; {stage_speedup:.2}x stage speedup predicts {amdahl_predicted:.2}x e2e (measured {e2e_speedup:.2}x)",
            "hconv_simd_amdahl",
            stage_share * 100.0
        );
    } else {
        println!("note: built without `--features telemetry`; stage breakdown unavailable");
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"hconv_simd_ab\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"git_revision\": \"{rev}\",\n"));
    json.push_str(&simd_json());
    json.push_str(&format!("  \"calib_ms\": {calib:.4},\n"));
    json.push_str(&format!("  \"telemetry_enabled\": {telemetry},\n"));
    json.push_str(&format!("  \"hconv_scalar_median_ms\": {e2e_off:.4},\n"));
    json.push_str(&format!("  \"hconv_simd_median_ms\": {e2e_on:.4},\n"));
    json.push_str(&format!("  \"hconv_speedup\": {e2e_speedup:.3},\n"));
    json.push_str("  \"stages\": {\n");
    json.push_str("    \"estimator\": \"mean over all span instances in the timed window\",\n");
    json.push_str(&format!(
        "    \"activation_fft_scalar_ms\": {act_off:.5},\n"
    ));
    json.push_str(&format!("    \"activation_fft_simd_ms\": {act_on:.5},\n"));
    json.push_str(&format!("    \"inverse_fft_scalar_ms\": {inv_off:.5},\n"));
    json.push_str(&format!("    \"inverse_fft_simd_ms\": {inv_on:.5},\n"));
    json.push_str(&format!("    \"combined_scalar_ms\": {stage_off:.5},\n"));
    json.push_str(&format!("    \"combined_simd_ms\": {stage_on:.5},\n"));
    json.push_str(&format!("    \"combined_speedup\": {stage_speedup:.3},\n"));
    json.push_str(&format!(
        "    \"activation_fft_share_of_scalar_e2e\": {act_share:.4},\n"
    ));
    json.push_str(&format!(
        "    \"inverse_fft_share_of_scalar_e2e\": {inv_share:.4},\n"
    ));
    json.push_str(&format!(
        "    \"combined_share_of_scalar_e2e\": {stage_share:.4},\n"
    ));
    json.push_str(&format!(
        "    \"amdahl_predicted_e2e_speedup\": {amdahl_predicted:.3}\n"
    ));
    json.push_str("  }\n");
    json.push_str("}\n");
    json
}

fn hit_rate(s: flash_runtime::CacheStats) -> f64 {
    let total = s.hits + s.misses;
    if total == 0 {
        0.0
    } else {
        s.hits as f64 / total as f64
    }
}

/// Prints the per-stage latency table of a [`flash_telemetry`] snapshot
/// (plus cache/pool hit rates), as shown by `--stages`.
fn print_stage_table(snap: &flash_telemetry::Snapshot) {
    if !snap.enabled {
        println!("note: built without `--features telemetry`; stage timings are all zero");
    }
    println!(
        "{:28} {:>7} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "total_ms", "mean_us", "p50_us", "p99_us", "max_us"
    );
    for (name, h) in &snap.spans {
        println!(
            "{name:28} {:>7} {:>11.3} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            h.count,
            h.total_ns as f64 / 1e6,
            h.mean_ns() as f64 / 1e3,
            h.p50_ns as f64 / 1e3,
            h.p99_ns as f64 / 1e3,
            h.max_ns as f64 / 1e3,
        );
    }
    for c in &snap.caches {
        println!(
            "cache {:22} {:>7} hits {:>7} misses",
            c.name, c.hits, c.misses
        );
    }
    for p in &snap.pools {
        println!(
            "pool  {:22} {:>7} hits {:>7} misses  hit_rate {:.4}",
            p.name, p.hits, p.misses, p.hit_rate
        );
    }
}

/// `--stages`: run the warm single-thread HConv layer a few times with a
/// clean telemetry window and print the per-stage breakdown.
fn stage_report() {
    banner("Per-stage breakdown: warm single-thread HConv layer");
    flash_runtime::set_threads(1);
    let fixture = HconvFixture::new();
    let engine = FlashHconv::new(fixture.cfg.clone());
    let mut wrng = StdRng::seed_from_u64(5);
    warm_up(200, 3, || {
        engine
            .run_layer(
                &fixture.sk,
                &fixture.spec,
                &fixture.x,
                &fixture.w,
                &mut wrng,
            )
            .expect("bench protocol run failed");
    });
    flash_telemetry::reset();
    let mut lrng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        engine
            .run_layer(
                &fixture.sk,
                &fixture.spec,
                &fixture.x,
                &fixture.w,
                &mut lrng,
            )
            .expect("bench protocol run failed");
    }
    flash_runtime::set_threads(0);
    let snap = flash_telemetry::snapshot();
    print_stage_table(&snap);

    // Robustness counters of the same window. The bench link is clean,
    // so any detected fault, retransmission, or noise-guard fallback
    // here means the wire path or the guard mis-fires on healthy
    // traffic — fail loudly rather than publish a poisoned baseline.
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    };
    println!(
        "wire  {:22} {:>9} up {:>9} down (framed bytes)",
        "bytes",
        counter("twopc.upload_wire_bytes"),
        counter("twopc.download_wire_bytes"),
    );
    for name in [
        "twopc.faults_detected",
        "twopc.frames_retried",
        "hconv.ntt_fallbacks",
        "hconv.pow2_fallbacks",
    ] {
        let v = counter(name);
        println!("fault {name:22} {v:>9}");
        assert_eq!(v, 0, "{name} must stay zero on a clean bench run");
    }
}

/// MAC-kernel A/B fixture shared by `--backends` and the regression
/// gate: `MAC_CALLS_PER_DRAIN` full-width lazy multiply-accumulates into
/// one `MAC_N`-coefficient accumulator, then one drain — the per-
/// `(oc, band)` cadence of the protocol's pointwise stage (one MAC per
/// channel group, one reduction per response). Both sides run the exact
/// loop shape; only the reduction strategy differs.
const MAC_N: usize = 4096;
const MAC_CALLS_PER_DRAIN: usize = 8;
const MAC_ITERS: usize = 50;

fn mac_operands(q: u64) -> (Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(29);
    let a: Vec<u64> = (0..MAC_N).map(|_| rng.gen_range(0..q)).collect();
    let w: Vec<u64> = (0..MAC_N).map(|_| rng.gen_range(0..q)).collect();
    (a, w)
}

/// Median of one prime-modulus MAC batch: the Harvey-lazy split-stream
/// Shoup kernel (no per-element reduction) with a Barrett drain per
/// accumulation group — the fastest MAC form the prime ring has.
fn prime_mac_ms() -> f64 {
    let p = HeParams::flash_default();
    let q = p.q;
    let (a, w) = mac_operands(q);
    let w_shoup: Vec<u64> = w
        .iter()
        .map(|&x| (((x as u128) << 64) / q as u128) as u64)
        .collect();
    let barrett = Barrett::new(q);
    let mut acc = vec![0u64; MAC_N];
    let mut batch = || {
        for _ in 0..MAC_ITERS {
            for _ in 0..MAC_CALLS_PER_DRAIN {
                pointwise_mul_acc_shoup_lazy(&mut acc, &a, &w, &w_shoup, p.ntt());
            }
            barrett.reduce_slice(&mut acc);
        }
    };
    batch(); // warm
    median_ms(7, batch)
}

/// Median of one power-of-two MAC batch: plain wrapping multiply-add
/// (`flash_math::pow2::mac_wrapping`, zero reduction work) with a
/// one-AND-per-element mask drain, at `q = 2^62`.
fn pow2_mac_ms() -> f64 {
    let q = 1u64 << 62;
    let (a, w) = mac_operands(q);
    let mut acc = vec![0u64; MAC_N];
    let mut batch = || {
        for _ in 0..MAC_ITERS {
            for _ in 0..MAC_CALLS_PER_DRAIN {
                pow2::mac_wrapping(&mut acc, &a, &w);
            }
            pow2::reduce_slice(&mut acc, q);
        }
    };
    batch(); // warm
    median_ms(7, batch)
}

/// One cell of the backend matrix.
struct BackendRow {
    backend: &'static str,
    layer: &'static str,
    n: usize,
    modulus_bits: u32,
    median_ms: f64,
    worst_bound_bits: f64,
    ceiling_bits: f64,
    headroom_bits: f64,
    fallbacks: usize,
}

/// Runs one layer end-to-end under `backend`: verifies the decrypted
/// reconstruction against the signed cleartext convolution (the
/// acceptance condition — the recorded per-band bound keeps transform
/// error below the decrypt rounding threshold), replays the runtime
/// guard's worst-case composed noise bound over every `(oc, band)` job,
/// and times the full protocol.
fn backend_matrix_row(
    backend_name: &'static str,
    layer: &'static str,
    params: HeParams,
    backend: PolyMulBackend,
    shape: ConvShape,
    reps: usize,
) -> BackendRow {
    let mut rng = StdRng::seed_from_u64(17);
    let sk = SecretKey::generate(&params, &mut rng);
    let x: Vec<i64> = (0..shape.input_len())
        .map(|_| rng.gen_range(-8..8))
        .collect();
    let w: Vec<i64> = (0..shape.m * shape.kernel_len())
        .map(|_| rng.gen_range(-8..8))
        .collect();
    let proto = ConvProtocol::new(params.clone(), shape, backend.clone());

    let (shares, stats) = proto.run(&sk, &x, &w, &mut rng).expect("matrix run failed");
    let got = proto.reconstruct(&shares);
    let want = expected_conv_mod(&x, &w, &shape, proto.ring());
    assert_eq!(
        got, want,
        "{backend_name}/{layer}: decrypted output diverged from the exact reference"
    );

    // Worst-case composed bound over every (oc, band) job — exactly the
    // expression the runtime noise guard evaluates (exact-pipeline bound
    // plus the backend's analytical transform error).
    let enc = proto.encoder();
    let bands = enc.bands();
    let mut worst = 0.0f64;
    for oc in 0..shape.m {
        let w_polys = enc.encode_weight(&w[oc * shape.kernel_len()..][..shape.kernel_len()], oc);
        for b in 0..bands {
            let (nb, w_sq) = conv_band_noise_bound(&params, &w_polys, b, None);
            let err = backend
                .error_model(&params)
                .map_or(0.0, |m| m.phase_error_bound(&params, w_sq, w_polys.len()));
            worst = worst.max(nb.bound() + err);
        }
    }
    let ceiling = params.noise_ceiling() as f64;

    let mut lrng = StdRng::seed_from_u64(23);
    let median = median_ms(reps, || {
        proto
            .run(&sk, &x, &w, &mut lrng)
            .expect("matrix run failed");
    });
    BackendRow {
        backend: backend_name,
        layer,
        n: params.n,
        modulus_bits: (params.q as f64).log2().ceil() as u32,
        median_ms: median,
        worst_bound_bits: worst.log2(),
        ceiling_bits: ceiling.log2(),
        headroom_bits: (ceiling / worst).log2(),
        fallbacks: stats.ntt_fallbacks + stats.pow2_fallbacks,
    }
}

/// `--backends`: the ciphertext-backend A/B suite. Kernel-level MAC
/// comparison (gated at ≥ 1.3× for the wrapping side unless `quick`)
/// plus the end-to-end backend matrix; writes `BENCH_backends.json`
/// unless `quick`.
fn backends_bench(quick: bool) {
    banner("Backend A/B: prime Harvey-lazy MAC vs power-of-two wrapping MAC");
    flash_runtime::set_threads(1);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rev = git_revision();

    // --- Kernel A/B, calibration-paired (the regression gate divides a
    // fresh calibration by `calib_ms`). Per-value minimum over spaced
    // attempts: contention only ever adds time.
    let (mut calib, mut prime_ms, mut pw2_ms) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        calib = calib.min(calibration_ms());
        prime_ms = prime_ms.min(prime_mac_ms());
        pw2_ms = pw2_ms.min(pow2_mac_ms());
    }
    let kernel_speedup = prime_ms / pw2_ms;
    let macs = MAC_ITERS * MAC_CALLS_PER_DRAIN * MAC_N;
    println!(
        "{:34} n={MAC_N}  {macs} MACs/batch  shoup-lazy+barrett {prime_ms:8.3} ms  wrap+mask {pw2_ms:8.3} ms  speedup {kernel_speedup:5.2}x",
        "pointwise_mac_kernel"
    );
    if quick {
        println!("note: --quick smoke; kernel speedup is reported, not gated");
    } else {
        assert!(
            kernel_speedup >= 1.3,
            "pow2 MAC kernel speedup {kernel_speedup:.2}x fell below the 1.3x acceptance floor"
        );
    }

    // --- Protocol matrix: exact-NTT vs approx-FFT vs Pow2, end to end.
    // The approximate backend runs the generous 50-bit/k=30 datapath: on
    // the small layer the guard keeps every band hot, while the
    // 64-channel layer's Σw² pushes its composed bound past the 36-bit
    // prime ceiling and the guard reroutes every band — exactly the
    // regime where the power-of-two ring's 2^62 ceiling keeps the
    // approximate path hot. The matrix records both, fallbacks included.
    flash_telemetry::reset();
    let small = ConvShape {
        c: 4,
        h: 8,
        w: 8,
        m: 4,
        k: 3,
    };
    // ResNet-18 conv2_x-shaped: 64 channels over 16×16 maps, 3×3.
    let conv2x = ConvShape {
        c: 64,
        h: 16,
        w: 16,
        m: 8,
        k: 3,
    };
    let mut rows = Vec::new();
    let mut layer_rows = |layer: &'static str, shape: ConvShape, n: usize, reps: usize| {
        let prime = HeParams::new(n, 36, 1 << 13, 3.2);
        let pw2 = HeParams::new_pow2(n, 62, 1 << 13, 3.2);
        let approx = PolyMulBackend::approx(FlashConfig::numerics_for(n, 50, 30));
        rows.push(backend_matrix_row(
            "exact-ntt",
            layer,
            prime.clone(),
            PolyMulBackend::Ntt,
            shape,
            reps,
        ));
        rows.push(backend_matrix_row(
            "approx-fft",
            layer,
            prime,
            approx,
            shape,
            reps,
        ));
        rows.push(backend_matrix_row(
            "pow2-wrap",
            layer,
            pw2,
            PolyMulBackend::Pow2,
            shape,
            reps,
        ));
    };
    layer_rows("small-3x3", small, 256, 5);
    if !quick {
        layer_rows("conv2x-64ch", conv2x, 1024, 3);
    }
    for r in &rows {
        println!(
            "{:14} {:12} n={:5} q~2^{:2}  median {:9.3} ms  bound 2^{:5.1} / ceiling 2^{:4.1} (headroom {:5.1} bits)  fallbacks {}",
            r.backend,
            r.layer,
            r.n,
            r.modulus_bits,
            r.median_ms,
            r.worst_bound_bits,
            r.ceiling_bits,
            r.headroom_bits,
            r.fallbacks
        );
    }
    // The pow2 rows must have run hot: at q = 2^62 the composed bound
    // sits dozens of bits under the ceiling, so a single guard reroute
    // here means the bound composition regressed.
    for r in rows.iter().filter(|r| r.backend == "pow2-wrap") {
        assert_eq!(
            r.fallbacks, 0,
            "pow2 {} tripped the noise guard on a layer with 2^{:.1} bits of headroom",
            r.layer, r.headroom_bits
        );
    }
    for layer in ["small-3x3", "conv2x-64ch"] {
        let of = |backend: &str| {
            rows.iter()
                .find(|r| r.backend == backend && r.layer == layer)
                .map(|r| r.median_ms)
        };
        if let (Some(ntt), Some(fft), Some(p2)) =
            (of("exact-ntt"), of("approx-fft"), of("pow2-wrap"))
        {
            println!(
                "{:34} {layer:12} pow2 {:5.2}x vs exact-ntt, {:5.2}x vs approx-fft",
                "backend_matrix_speedup",
                ntt / p2,
                fft / p2
            );
        }
    }
    flash_runtime::set_threads(0);

    if quick {
        println!("note: --quick leaves the committed BENCH_backends.json untouched");
        return;
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"backend_matrix\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"git_revision\": \"{rev}\",\n"));
    json.push_str(&simd_json());
    json.push_str(&format!("  \"calib_ms\": {calib:.4},\n"));
    json.push_str("  \"kernel\": {\n");
    json.push_str("    \"name\": \"pointwise_mac_drain\",\n");
    json.push_str(&format!("    \"n\": {MAC_N},\n"));
    json.push_str(&format!(
        "    \"calls_per_drain\": {MAC_CALLS_PER_DRAIN},\n"
    ));
    json.push_str(&format!("    \"prime_lazy_shoup_ms\": {prime_ms:.4},\n"));
    json.push_str(&format!("    \"pow2_mac_ms\": {pw2_ms:.4},\n"));
    json.push_str(&format!("    \"speedup\": {kernel_speedup:.3}\n"));
    json.push_str("  },\n");
    json.push_str("  \"matrix\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"layer\": \"{}\", \"n\": {}, \"modulus_bits\": {}, \"median_ms\": {:.4}, \"worst_bound_bits\": {:.2}, \"noise_ceiling_bits\": {:.2}, \"headroom_bits\": {:.2}, \"fallbacks\": {}, \"output_exact\": true}}{}\n",
            r.backend,
            r.layer,
            r.n,
            r.modulus_bits,
            r.median_ms,
            r.worst_bound_bits,
            r.ceiling_bits,
            r.headroom_bits,
            r.fallbacks,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"telemetry\": {}\n",
        flash_telemetry::snapshot().to_json(2)
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_backends.json", &json).expect("write BENCH_backends.json");
    println!("wrote BENCH_backends.json");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // `--no-simd`: the A/B switch. Forces the scalar fallback for the
    // whole run (equivalent to `FLASH_SIMD=off`), so two invocations —
    // with and without the flag — compare the dispatch tiers on every
    // bench in this binary. Note the regression gate's committed
    // baselines are produced with full dispatch; `--no-simd
    // --check-regression` is for experiments, not gating.
    let no_simd = std::env::args().any(|a| a == "--no-simd");
    let run_level = no_simd.then_some(SimdLevel::Scalar);
    simd::force_level(run_level);
    if std::env::args().any(|a| a == "--check-regression") {
        std::process::exit(check_regression());
    }
    if std::env::args().any(|a| a == "--stages") {
        stage_report();
        return;
    }
    if std::env::args().any(|a| a == "--backends") {
        backends_bench(quick);
        return;
    }
    banner("Runtime benchmark: parallel hot paths + plan cache");
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rev = git_revision();
    let many = host.max(4);
    // Thread counts above the host's parallelism only measure scheduler
    // noise (workers time-slice one core), so they are skipped rather
    // than reported as if they were parallel speedups.
    let oversubscribed = many > host;
    let mut rows: Vec<Row> = Vec::new();

    // --- HConv layer (functional engine, small parameters).
    let fixture = HconvFixture::new();
    let engine = FlashHconv::new(fixture.cfg.clone());
    let hconv_run = |threads: usize| {
        flash_runtime::set_threads(threads);
        let mut lrng = StdRng::seed_from_u64(5);
        median_ms(5, || {
            engine
                .run_layer(
                    &fixture.sk,
                    &fixture.spec,
                    &fixture.x,
                    &fixture.w,
                    &mut lrng,
                )
                .expect("bench protocol run failed");
        })
    };

    // --- Hot-path bench: warm-cache single-thread HConv vs the
    // pre-optimization baseline. Parse the baseline *before* anything
    // overwrites BENCH_runtime.json.
    let baseline = baseline_hconv_ms();
    flash_runtime::set_threads(1);
    {
        // Warm up: populate scratch pools and transform-plan caches so
        // the timed region measures the steady state the pools exist for.
        let mut wrng = StdRng::seed_from_u64(5);
        warm_up(200, 3, || {
            engine
                .run_layer(
                    &fixture.sk,
                    &fixture.spec,
                    &fixture.x,
                    &fixture.w,
                    &mut wrng,
                )
                .expect("bench protocol run failed");
        });
    }
    flash_runtime::U64_SCRATCH.reset_stats();
    flash_runtime::F64_SCRATCH.reset_stats();
    flash_runtime::I128_SCRATCH.reset_stats();
    flash_fft::C64_SCRATCH.reset_stats();
    // Clean telemetry window: the embedded stage breakdown covers only
    // the timed hot-path runs, not the warm-up.
    flash_telemetry::reset();
    let (calib, hot) = paired_median(&fixture, &engine, 5);
    let speedup = baseline / hot;
    println!(
        "{:34} threads= 1  median {:9.3} ms  baseline {:9.3} ms  speedup {:5.2}x",
        "hconv_layer_hotpath", hot, baseline, speedup
    );
    let mut hot_json = String::from("{\n");
    hot_json.push_str("  \"bench\": \"hconv_layer_hotpath\",\n");
    hot_json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    hot_json.push_str(&format!("  \"git_revision\": \"{rev}\",\n"));
    hot_json.push_str(&simd_json());
    hot_json.push_str("  \"threads\": 1,\n");
    hot_json.push_str("  \"warm_cache\": true,\n");
    hot_json.push_str(&format!("  \"calib_ms\": {calib:.4},\n"));
    hot_json.push_str(&format!("  \"median_ms\": {hot:.4},\n"));
    hot_json.push_str(&format!("  \"baseline_median_ms\": {baseline:.4},\n"));
    hot_json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    hot_json.push_str("  \"pool_stats\": {\n");
    let pools = [
        pool_stats_json("u64", flash_runtime::U64_SCRATCH.stats()),
        pool_stats_json("f64", flash_runtime::F64_SCRATCH.stats()),
        pool_stats_json("i128", flash_runtime::I128_SCRATCH.stats()),
        pool_stats_json("c64", flash_fft::C64_SCRATCH.stats()),
    ];
    hot_json.push_str(&pools.join(",\n"));
    hot_json.push_str("\n  },\n");
    hot_json.push_str(&format!(
        "  \"telemetry\": {}\n",
        flash_telemetry::snapshot().to_json(2)
    ));
    hot_json.push_str("}\n");
    std::fs::write("BENCH_hotpath.json", &hot_json).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");

    // --- Sparse-transform bench (kernel + end-to-end + plan cache).
    let sparse_json = sparse_bench(&fixture, host, &rev);
    std::fs::write("BENCH_sparse.json", &sparse_json).expect("write BENCH_sparse.json");
    println!("wrote BENCH_sparse.json");

    // --- SIMD A/B bench (scalar fallback vs active dispatch tier) at
    // production degree with full lane occupancy.
    let simd_fixture = HconvFixture::simd();
    let simd_ab = simd_bench(&simd_fixture, host, &rev, run_level);
    std::fs::write("BENCH_simd.json", &simd_ab).expect("write BENCH_simd.json");
    println!("wrote BENCH_simd.json");
    if quick {
        flash_runtime::set_threads(0);
        return;
    }
    let h1 = hconv_run(1);
    rows.push(Row {
        name: "hconv_layer",
        threads: 1,
        median_ms: h1,
        speedup: 1.0,
    });
    if !oversubscribed {
        let hn = hconv_run(many);
        rows.push(Row {
            name: "hconv_layer",
            threads: many,
            median_ms: hn,
            speedup: h1 / hn,
        });
    }

    // --- ResNet-18 network performance model at N = 4096. The symbolic
    // analysis memo is cleared per iteration so each run does the full
    // per-layer work the parallel fan-out is meant to hide.
    let cfg = FlashConfig::paper_default();
    let net = resnet18_conv_layers();
    let net_run = |threads: usize| {
        flash_runtime::set_threads(threads);
        median_ms(7, || {
            flash_sparse::symbolic::clear_analysis_cache();
            let _ = run_network(&net, &cfg);
        })
    };
    let n1 = net_run(1);
    rows.push(Row {
        name: "run_network_resnet18",
        threads: 1,
        median_ms: n1,
        speedup: 1.0,
    });
    if !oversubscribed {
        let nn = net_run(many);
        rows.push(Row {
            name: "run_network_resnet18",
            threads: many,
            median_ms: nn,
            speedup: n1 / nn,
        });
    }

    // --- Memoization win on the same model (warm memo, any threads).
    flash_runtime::set_threads(1);
    let warm = median_ms(7, || {
        let _ = run_network(&net, &cfg);
    });
    rows.push(Row {
        name: "run_network_resnet18_warm_cache",
        threads: 1,
        median_ms: warm,
        speedup: n1 / warm,
    });

    // --- DSE candidate batch (256 analytical evaluations).
    let objective = Objective::from_layer(DesignSpace::flash_default(2048), 9, 8.0, 1024.0);
    let dse_run = |threads: usize| {
        flash_runtime::set_threads(threads);
        let mut drng = StdRng::seed_from_u64(23);
        median_ms(5, || {
            let _ = random_search(&objective, 256, &mut drng);
        })
    };
    let d1 = dse_run(1);
    rows.push(Row {
        name: "dse_eval_batch",
        threads: 1,
        median_ms: d1,
        speedup: 1.0,
    });
    if !oversubscribed {
        let dn = dse_run(many);
        rows.push(Row {
            name: "dse_eval_batch",
            threads: many,
            median_ms: dn,
            speedup: d1 / dn,
        });
    }
    flash_runtime::set_threads(0);

    // --- Report.
    for r in &rows {
        println!(
            "{:34} threads={:2}  median {:9.3} ms  speedup {:5.2}x",
            r.name, r.threads, r.median_ms, r.speedup
        );
    }
    if oversubscribed {
        println!(
            "skipped threads={many} rows: host_parallelism={host} cannot run them in parallel"
        );
    }
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"git_revision\": \"{rev}\",\n"));
    json.push_str(&simd_json());
    if oversubscribed {
        json.push_str("  \"threads_compared\": [1],\n");
        json.push_str(&format!(
            "  \"skipped_oversubscribed_threads\": [{many}],\n"
        ));
    } else {
        json.push_str(&format!("  \"threads_compared\": [1, {many}],\n"));
    }
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"median_ms\": {:.4}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.threads,
            r.median_ms,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"telemetry\": {}\n",
        flash_telemetry::snapshot().to_json(2)
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("\nwrote BENCH_runtime.json");
}
