//! Regenerates **Figure 7**: the coefficient sparsity of encoded weight
//! polynomials across ResNet layers.

use flash_bench::{banner, pct, subhead};
use flash_nn::resnet::{resnet18_conv_layers, resnet50_conv_layers};
use flash_nn::sparsity::layer_weight_sparsity;

fn main() {
    banner("Figure 7: weight-polynomial coefficient sparsity (N = 4096)");
    for net in [resnet18_conv_layers(), resnet50_conv_layers()] {
        subhead(&net.name);
        let mut all = Vec::new();
        println!(
            "{:<26} {:>6} {:>10} {:>10}",
            "layer", "k", "valid/N", "sparsity"
        );
        for l in &net.convs {
            let s = layer_weight_sparsity(l, 4096);
            println!(
                "{:<26} {:>4}x{} {:>5}/4096 {:>10}",
                l.name,
                l.k,
                l.k,
                s.valid_per_poly,
                pct(s.sparsity)
            );
            all.push(s.sparsity);
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "summary: min {} median {} max {}  (paper: \"more than 90%\")",
            pct(all[0]),
            pct(all[all.len() / 2]),
            pct(all[all.len() - 1])
        );
    }

    // The paper's concrete example: H = W = 58 (padded 56), k = 3.
    subhead("paper example: 58x58 padded image, 3x3 kernel");
    let spec = flash_nn::layers::ConvLayerSpec {
        name: "resnet50 stage-1 3x3".into(),
        c: 64,
        h: 56,
        w: 56,
        m: 64,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let s = layer_weight_sparsity(&spec, 4096);
    println!(
        "valid = {} of 4096 coefficients -> sparsity {} ; pattern: k runs of k values, W apart",
        s.valid_per_poly,
        pct(s.sparsity)
    );
}
