//! Supplementary analysis: protocol communication volume.
//!
//! Cheetah's coefficient encoding exists to keep ciphertext traffic low;
//! FLASH inherits it unchanged, so the byte counts here are the
//! encoding-level truth for both. Computed analytically from the tiling
//! plans at the paper's `N = 4096`, 39-bit `q` (5 bytes/coefficient) —
//! identical to what the functional protocol's byte accounting reports at
//! small scale.

use flash_bench::{banner, subhead};
use flash_he::encoding::{ConvEncoder, TileAlignment};
use flash_he::matvec::MatVecEncoder;
use flash_nn::resnet::{resnet18_conv_layers, resnet50_conv_layers};

const N: usize = 4096;
const CT_BYTES: usize = 2 * N * 5; // two polys x 5 bytes per 39-bit coeff

fn main() {
    banner("Supplementary: ciphertext traffic per private inference");
    for net in [resnet18_conv_layers(), resnet50_conv_layers()] {
        subhead(&net.name);
        let mut up = 0usize;
        let mut down = 0usize;
        for l in &net.convs {
            let phases = if l.stride == 2 { 4 } else { 1 };
            let enc = ConvEncoder::with_alignment(l.encoded_shape(), N, TileAlignment::PowerOfTwo);
            up += phases * enc.activation_polys();
            // results repacked to the output volume before download
            let out = l.m * l.out_h() * l.out_w();
            down += out.div_ceil(N).max(1);
        }
        for &(ni, no) in &net.fcs {
            let fc = MatVecEncoder::new(ni, no, N);
            up += fc.col_chunks();
            down += no.div_ceil(N).max(1);
        }
        println!(
            "upload:   {:>6} ciphertexts = {:>8.1} MiB",
            up,
            (up * CT_BYTES) as f64 / (1 << 20) as f64
        );
        println!(
            "download: {:>6} ciphertexts = {:>8.1} MiB",
            down,
            (down * CT_BYTES) as f64 / (1 << 20) as f64
        );
        println!(
            "(compact layout upload would be {:>6} ciphertexts — the aligned layout's \
             cost for its sparsity)",
            {
                let mut c = 0usize;
                for l in &net.convs {
                    let phases = if l.stride == 2 { 4 } else { 1 };
                    let enc =
                        ConvEncoder::with_alignment(l.encoded_shape(), N, TileAlignment::Compact);
                    c += phases * enc.activation_polys();
                }
                c
            }
        );
    }
    println!();
    println!("note: Cheetah additionally truncates response ciphertexts; our counts");
    println!("are the upper bound the accelerator's workload model uses.");
}
