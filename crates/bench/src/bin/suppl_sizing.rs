//! Supplementary: architecture sizing sweep.
//!
//! FLASH fixes 60 approximate PEs (matching CHAM's BU count) and 4 FP
//! PEs. This sweep varies both array sizes and the point-wise multiplier
//! count, reporting ResNet-50 transform latency, full-system latency and
//! silicon cost — the capacity-balance view that explains the published
//! configuration.

use flash_accel::config::FlashConfig;
use flash_accel::inference::run_network;
use flash_bench::{banner, subhead};
use flash_hw::cost::CostModel;
use flash_nn::resnet::resnet50_conv_layers;

fn main() {
    banner("Supplementary: architecture sizing (ResNet-50)");
    let net = resnet50_conv_layers();
    let model = CostModel::cmos28();

    subhead("approximate-PE count (weight array)");
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>9}",
        "PEs", "tf-latency ms", "full-lat ms", "area mm2", "power W"
    );
    for pes in [15u32, 30, 60, 120, 240] {
        let mut cfg = FlashConfig::paper_default();
        cfg.arch.approx_pes = pes;
        let run = run_network(&net, &cfg);
        let cost = cfg.arch.total_cost(&model);
        println!(
            "{pes:>6} {:>14.2} {:>14.2} {:>10.2} {:>9.2}",
            run.transform_latency_s * 1e3,
            run.total_latency_s * 1e3,
            cost.area_mm2(),
            cost.power_w()
        );
    }

    subhead("FP-PE count (activation/inverse array)");
    for fp in [2u32, 4, 8, 16, 32] {
        let mut cfg = FlashConfig::paper_default();
        cfg.arch.fp_pes = fp;
        let run = run_network(&net, &cfg);
        let cost = cfg.arch.total_cost(&model);
        println!(
            "{fp:>6} {:>14.2} {:>14.2} {:>10.2} {:>9.2}",
            run.transform_latency_s * 1e3,
            run.total_latency_s * 1e3,
            cost.area_mm2(),
            cost.power_w()
        );
    }

    subhead("point-wise multiplier count");
    for pw in [32u32, 64, 128, 256, 512] {
        let mut cfg = FlashConfig::paper_default();
        cfg.arch.pointwise_muls = pw;
        cfg.arch.fp_accs = pw;
        let run = run_network(&net, &cfg);
        let cost = cfg.arch.total_cost(&model);
        println!(
            "{pw:>6} {:>14.2} {:>14.2} {:>10.2} {:>9.2}",
            run.transform_latency_s * 1e3,
            run.total_latency_s * 1e3,
            cost.area_mm2(),
            cost.power_w()
        );
    }
    println!();
    println!("reading: the weight array saturates early (its work is already 98% pruned);");
    println!("FP PEs bound the transform latency, and point-wise units bound the full");
    println!("system — growing them trades silicon for the declared future bottleneck.");
}
