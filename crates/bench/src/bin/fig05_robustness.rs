//! Regenerates **Figure 5(b)**: computation bit-width reduction through
//! the kernel / layer / network robustness levels.
//!
//! Sweeps the fixed-point data width of the approximate weight transform
//! at the FLASH operating parameters, measuring (a) the HConv output
//! error against the kernel-level budget `q/(2t)`, and (b) the
//! re-quantization flip rate at the layer level. The paper's landmark:
//! a 48-bit FP datapath is fully exact, and 27-bit FXP changes no final
//! classification.

use flash_accel::config::FlashConfig;
use flash_bench::{banner, subhead};
use flash_fft::error::{monte_carlo_error, ErrorWorkload};
use flash_nn::quant::Requantizer;
use flash_nn::robustness::{layer_flip_rate, MarginModel};
use rand::SeedableRng;

fn main() {
    banner("Figure 5(b): bit-width reduction via kernel/layer/network robustness");
    let he = flash_he::HeParams::flash_default();
    let n = he.n;
    let budget = he.noise_ceiling() as f64;
    println!(
        "params: N={n}, q=2^{:.1}, t=2^{:.0}, kernel budget q/2t = {budget:.0}",
        (he.q as f64).log2(),
        (he.t as f64).log2()
    );

    let wl = ErrorWorkload {
        weight_mag: 8,
        weight_nnz: 9,
        act_mag: (he.t / 2) as f64,
    };
    let requant = Requantizer::calibrate(576 * 64, 4);
    let sps: Vec<i64> = (-(576 * 64)..(576 * 64)).step_by(7).collect();
    let margin = MarginModel::new(0.7424);

    // RMS of an exact product coefficient (q-domain), for the
    // ciphertext-side error model: the full-FXP ablation also runs the
    // ciphertext transforms at `dw` bits. Classic fixed-point FFT scaling
    // (>>1 per stage) reserves `log2(m) + 1 = 12` integer bits for
    // worst-case growth plus the sign, leaving a relative precision of
    // ~2^-(dw-13), amplified by ~sqrt(log2 m) stages of roundoff.
    let sigma_prod = (he.t / 2) as f64 / (3.0f64).sqrt() * (9.0f64 * 24.0).sqrt();
    let stages_amp = ((n / 2) as f64).log2().sqrt();

    subhead("dw sweep: full FXP datapath (weights bit-accurate, ct-side modeled)");
    println!(
        "{:>4} {:>14} {:>14} {:>10} {:>10}",
        "dw", "q-err std", "SP-err std", "flip rate", "acc proxy"
    );
    let mut first_kernel_exact = None;
    let mut first_layer_exact = None;
    let mut first_network_ok = None;
    for dw in [
        16u32, 18, 20, 22, 24, 25, 26, 27, 28, 30, 33, 36, 40, 44, 48,
    ] {
        let cfg = FlashConfig::numerics_for(n, dw.clamp(18, 40), 18);
        let mut rng = rand::rngs::StdRng::seed_from_u64(dw as u64);
        let err = monte_carlo_error(&cfg, wl, 2, &mut rng);
        let ct_rel = (2.0f64).powi(-(dw as i32 - 13));
        let ct_err_std = ct_rel * sigma_prod * stages_amp;
        let q_err_std = (err.variance + ct_err_std * ct_err_std).sqrt();
        let q_err_max = err.max_abs + 6.0 * ct_err_std;
        let sp_err_std = q_err_std * he.t as f64 / he.q as f64;
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(1000 + dw as u64);
        let flip = layer_flip_rate(&requant, &sps, sp_err_std, &mut rng2);
        let acc = margin.accuracy(flip);
        println!(
            "{dw:>4} {q_err_std:>14.1} {sp_err_std:>14.2} {flip:>10.4} {:>9.2}%",
            acc * 100.0
        );
        if first_kernel_exact.is_none() && q_err_max < budget {
            first_kernel_exact = Some(dw);
        }
        if first_layer_exact.is_none() && flip == 0.0 {
            first_layer_exact = Some(dw);
        }
        if first_network_ok.is_none() && margin.baseline - acc < 0.001 {
            first_network_ok = Some(dw);
        }
    }
    println!();
    println!("robustness thresholds (smallest dw satisfying each level):");
    println!(
        "  network level (accuracy within 0.1 pt):  dw = {:?}  (paper: 27-bit FXP)",
        first_network_ok
    );
    println!(
        "  layer level (no re-quantization flips):  dw = {:?}  (paper: ~31 bits)",
        first_layer_exact
    );
    println!(
        "  kernel level (error < q/2t, exact dec):  dw = {:?}  (paper: ~39 bits / 48-bit FP)",
        first_kernel_exact
    );
    println!("the paper's Figure 5(b) progression — wider tolerance at each higher");
    println!("robustness level — is reproduced; absolute thresholds depend on layer");
    println!("statistics and the ciphertext-side scaling convention.");
}
