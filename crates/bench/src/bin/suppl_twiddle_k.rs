//! Supplementary experiment: twiddle quantization levels.
//!
//! Reproduces three in-text claims of Section IV-C:
//! * the natural CSD digit count of twiddles is around `k ≈ 18` for
//!   accuracy-neutral quantization;
//! * approximation-aware training allows `k ≈ 5` "with power comparable
//!   to an 11-bit multiplier";
//! * DSE after training reduces hardware cost by ≈62.8 %.

use flash_bench::{banner, compare_row, pct, subhead};
use flash_fft::twiddle::{natural_digit_counts, StageTwiddles};
use flash_hw::cost::CostModel;
use flash_hw::units::BuKind;

fn main() {
    banner("Supplementary: twiddle quantization level k");
    let m = CostModel::cmos28();

    subhead("natural CSD digit counts of the N=4096 twiddle set");
    for frac in [16u32, 20, 24] {
        let counts = natural_digit_counts(512, frac);
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let max = counts.iter().max().unwrap();
        println!("{frac}-bit resolution: mean k = {mean:.1}, max k = {max}");
    }
    println!("paper: k ≈ 18 keeps classification accuracy within 1% untrained");

    subhead("quantization error vs k (stage-11 twiddles)");
    println!("{:>4} {:>14} {:>12}", "k", "max |err|", "mean terms");
    for k in [2usize, 5, 8, 12, 18, 24] {
        let s = StageTwiddles::fft_stage(11, k, 24);
        println!("{k:>4} {:>14.2e} {:>12.2}", s.max_error(), s.mean_terms());
    }

    subhead("hardware cost at the trained (k=5) vs untrained (k=18) points");
    let bu5 = BuKind::Approx {
        data_bits: 39,
        k: 5,
        mux_inputs: 8,
    }
    .cost(&m);
    let bu18 = BuKind::Approx {
        data_bits: 39,
        k: 18,
        mux_inputs: 8,
    }
    .cost(&m);
    compare_row(
        "BU power reduction after training",
        "62.8%",
        pct(1.0 - bu5.power_mw / bu18.power_mw),
    );
    println!("k=18 BU: {bu18} ; k=5 BU: {bu5}");
    let eleven_bit = m.complex_fxp_mult(11);
    println!(
        "paper: k=5 multiplier power comparable to an 11-bit multiplier — \
         ours: {:.2} mW vs {:.2} mW",
        m.shift_add_complex_mult(39, 5, 8).power_mw,
        eleven_bit.power_mw
    );
}
