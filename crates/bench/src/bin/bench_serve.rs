//! Multi-session serving benchmark: aggregate throughput and latency of
//! the batching core against the serial per-session baseline, written
//! to `BENCH_serve.json`.
//!
//! The fleet is simulated in-process: every client session carries its
//! own keys and fault-isolated transport links, requests round-robin
//! across sessions so the coalescing window always sees cross-session
//! traffic, and the timed region covers dispatch through the last
//! terminal outcome (client-local prepare/collect run untimed — that
//! work belongs to the clients, not the server). Both sides run the
//! same wave shape; only `BatchPolicy` differs, so the speedup isolates
//! exactly what the serving layer adds: per-model amortization of
//! weight spectra/noise bounds and full-width SoA batches coalesced
//! across sessions. On a single-core host that is the whole win —
//! there is no thread parallelism to hide behind.
//!
//! The headline comparison runs at one worker — batching vs serial with
//! no thread parallelism to hide behind. A separate worker sweep then
//! re-runs the batched wave at 2 and `host_parallelism` workers (counts
//! above the host's are skipped — they only measure scheduler noise) so
//! the artifact separates the batching win from worker scaling.
//!
//! Flags: `--quick` shrinks the fleet to 64 clients and skips the
//! artifact write (the CI smoke); `--chaos` adds a wave with moderate
//! per-session fault plans on odd tags and checks isolation;
//! `--clients N` overrides the fleet size (floor 1).

use flash_bench::banner;
use flash_bench::perf::{calibration_ms, git_revision, simd_json};
use flash_bench::serving::{self, Wave};
use flash_serve::BatchPolicy;

const REQS_PER_CLIENT: u64 = 2;
const WORKERS: usize = 1;

fn wave_line(name: &str, w: &Wave) {
    println!(
        "{name:26} {:4} clients  {:5} reqs  {:8.1} req/s  p50 {:7.2} ms  p99 {:7.2} ms  occupancy {:.3}  mean batch {:5.2}",
        w.connected,
        w.dispatched,
        w.throughput_rps(),
        w.p50_ms,
        w.p99_ms,
        w.stats.occupancy(),
        w.stats.mean_batch(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let chaos = args.iter().any(|a| a == "--chaos");
    let mut clients: u64 = if quick { 64 } else { 256 };
    if let Some(pos) = args.iter().position(|a| a == "--clients") {
        clients = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--clients takes a number")
    }
    clients = clients.max(1);

    banner("Serving benchmark: cross-session batching vs serial per-session");
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rev = git_revision();
    println!(
        "fleet: {clients} clients x {REQS_PER_CLIENT} requests, {WORKERS} worker(s), model N={} {:?}",
        serving::params().n,
        serving::shape(),
    );

    // Best-of-three batched waves paired with a calibration sample
    // (the regression gate normalizes by `calib_ms`), best-of-two
    // serial waves. Contention only ever adds time, so the per-side
    // minimum over spaced attempts estimates the quiet cost; every
    // wave is bit-deterministic in content, so "fastest" never means
    // "different".
    let mut calib = f64::INFINITY;
    let mut batched: Option<Wave> = None;
    let mut serial: Option<Wave> = None;
    for attempt in 0..3 {
        calib = calib.min(calibration_ms());
        let w = serving::run_wave(
            BatchPolicy::batched(),
            WORKERS,
            clients,
            REQS_PER_CLIENT,
            false,
        );
        assert_eq!(
            w.answered, w.dispatched,
            "clean batched wave answers everything"
        );
        if batched.as_ref().is_none_or(|b| w.elapsed_s < b.elapsed_s) {
            batched = Some(w);
        }
        if attempt < 2 {
            let w = serving::run_wave(
                BatchPolicy::serial_baseline(),
                WORKERS,
                clients,
                REQS_PER_CLIENT,
                false,
            );
            assert_eq!(
                w.answered, w.dispatched,
                "clean serial wave answers everything"
            );
            if serial.as_ref().is_none_or(|s| w.elapsed_s < s.elapsed_s) {
                serial = Some(w);
            }
        }
    }
    let batched = batched.expect("batched wave ran");
    let serial = serial.expect("serial wave ran");
    wave_line("serve_serial_baseline", &serial);
    wave_line("serve_batched", &batched);
    let speedup = serial.elapsed_s / batched.elapsed_s;
    println!(
        "{:26} {speedup:5.2}x aggregate throughput ({} requests, identical bytes both modes)",
        "serve_speedup", batched.dispatched
    );

    let occupancy = batched.stats.occupancy();
    assert!(
        occupancy >= 0.8,
        "batched kernel occupancy {occupancy:.3} fell below 0.8 — coalescing is not filling the SIMD lanes"
    );
    if quick {
        println!("note: --quick smoke; speedup is reported, not gated");
    } else {
        assert!(
            speedup >= 2.0,
            "aggregate speedup {speedup:.2}x fell below the 2x acceptance floor"
        );
    }

    // A clean wave must never exercise the resilience machinery: every
    // shed, expiry, quarantine, retransmission or watchdog kick on
    // healthy links and an unexpired-deadline policy is a false
    // positive that would refuse real traffic in production. Checked
    // both per-wave (server accounting) and process-wide (telemetry).
    for (name, w) in [("serial", &serial), ("batched", &batched)] {
        let s = &w.stats;
        for (counter, v) in [
            ("shed", s.shed),
            ("expired", s.expired),
            ("quarantined", s.quarantined),
            ("poisoned", s.poisoned),
            ("retries", s.retries),
            ("watchdog_kicks", s.watchdog_kicks),
            ("requests_refused", s.requests_refused),
        ] {
            assert_eq!(v, 0, "clean {name} wave bumped serve.{counter} to {v}");
        }
    }
    let snap = flash_telemetry::snapshot();
    for name in [
        "serve.shed",
        "serve.expired",
        "serve.quarantined",
        "serve.retries",
        "serve.watchdog_kicks",
    ] {
        let v = snap
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v);
        assert_eq!(v, 0, "{name} must stay zero across clean bench_serve waves");
    }
    println!(
        "{:26} shed/expired/quarantined/retries/watchdog_kicks all zero on clean waves",
        "serve_clean_counters"
    );

    if chaos {
        let w = serving::run_wave(
            BatchPolicy::batched(),
            WORKERS,
            clients,
            REQS_PER_CLIENT,
            true,
        );
        let clean_sessions = clients.div_ceil(2); // even tags run clean links
        println!(
            "{:26} {:4}/{clients} connected  {:5}/{:5} answered  {:3} failed sessions  {:5} faults detected",
            "serve_chaos", w.connected, w.answered, w.dispatched, w.failed_sessions, w.faults_detected,
        );
        assert!(
            w.answered >= clean_sessions * REQS_PER_CLIENT,
            "chaos on faulted sessions stalled clean sessions ({} answered < {} clean requests)",
            w.answered,
            clean_sessions * REQS_PER_CLIENT
        );
        assert!(
            w.faults_detected > 0,
            "chaos wave detected no faults — the fault plans never fired"
        );
    }

    if quick {
        println!("note: --quick leaves the committed BENCH_serve.json untouched");
        return;
    }

    // --- Worker sweep (batched mode only): the headline keys above stay
    // at one worker; these rows isolate what extra workers add on this
    // host. Every wave is content-deterministic, so the sweep reuses the
    // headline wave for the workers=1 row.
    let mut sweep: Vec<(usize, Wave)> = vec![(1, batched.clone())];
    let mut skipped: Vec<usize> = Vec::new();
    let mut counts = vec![2usize, host];
    counts.sort_unstable();
    counts.dedup();
    for wk in counts {
        if wk <= 1 {
            continue;
        }
        if wk > host {
            // Worker counts above the host's parallelism only measure
            // scheduler noise (threads time-slice one core).
            skipped.push(wk);
            continue;
        }
        let w = serving::run_wave(BatchPolicy::batched(), wk, clients, REQS_PER_CLIENT, false);
        assert_eq!(
            w.answered, w.dispatched,
            "clean batched wave answers everything at {wk} workers"
        );
        sweep.push((wk, w));
    }
    if !skipped.is_empty() {
        println!(
            "skipped worker counts {skipped:?}: host_parallelism={host} cannot run them in parallel"
        );
    }
    let base_elapsed = sweep[0].1.elapsed_s;
    for (wk, w) in sweep.iter().skip(1) {
        println!(
            "{:26} workers={wk:2}  {:8.1} req/s  {:7.2} ms/req  {:5.2}x vs 1 worker",
            "serve_batched_workers",
            w.throughput_rps(),
            w.ms_per_req(),
            base_elapsed / w.elapsed_s
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serve_multi_session\",\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"git_revision\": \"{rev}\",\n"));
    json.push_str(&simd_json());
    json.push_str(&format!("  \"calib_ms\": {calib:.4},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"reqs_per_client\": {REQS_PER_CLIENT},\n"));
    json.push_str(&format!("  \"requests\": {},\n", batched.dispatched));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    for (prefix, w) in [("serial", &serial), ("batched", &batched)] {
        json.push_str(&format!(
            "  \"{prefix}_elapsed_ms\": {:.3},\n",
            w.elapsed_s * 1e3
        ));
        json.push_str(&format!(
            "  \"{prefix}_ms_per_req\": {:.4},\n",
            w.ms_per_req()
        ));
        json.push_str(&format!(
            "  \"{prefix}_throughput_rps\": {:.1},\n",
            w.throughput_rps()
        ));
        json.push_str(&format!("  \"{prefix}_p50_ms\": {:.3},\n", w.p50_ms));
        json.push_str(&format!("  \"{prefix}_p99_ms\": {:.3},\n", w.p99_ms));
        json.push_str(&format!(
            "  \"{prefix}_occupancy\": {:.4},\n",
            w.stats.occupancy()
        ));
        json.push_str(&format!(
            "  \"{prefix}_mean_batch\": {:.2},\n",
            w.stats.mean_batch()
        ));
    }
    json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    json.push_str("  \"worker_sweep\": [\n");
    for (i, (wk, w)) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {wk}, \"elapsed_ms\": {:.3}, \"ms_per_req\": {:.4}, \"throughput_rps\": {:.1}, \"speedup_vs_1_worker\": {:.3}}}{}\n",
            w.elapsed_s * 1e3,
            w.ms_per_req(),
            w.throughput_rps(),
            base_elapsed / w.elapsed_s,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    if !skipped.is_empty() {
        let list: Vec<String> = skipped.iter().map(|w| w.to_string()).collect();
        json.push_str(&format!(
            "  \"skipped_oversubscribed_workers\": [{}],\n",
            list.join(", ")
        ));
    }
    json.push_str(&format!(
        "  \"telemetry\": {}\n",
        flash_telemetry::snapshot().to_json(2)
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
