//! Shared reporting helpers for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper, printing the paper's reported values next to this
//! reproduction's measured values. Run `cargo run --release -p
//! flash-bench --bin <name>`; the `paper_suite` binary runs all of them.

use std::fmt::Display;

pub mod chaos;
pub mod perf;
pub mod serving;

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("{}", "=".repeat(74));
    println!("{title}");
    println!("{}", "=".repeat(74));
}

/// Prints a sub-header.
pub fn subhead(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Formats a "paper vs measured" row.
pub fn compare_row(label: &str, paper: impl Display, measured: impl Display) {
    println!("{label:<44} paper: {paper:>12}   measured: {measured:>12}");
}

/// Formats a ratio as `x.xx×`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with SI-ish precision.
pub fn f(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// A simple wall-clock timer for the software profiling figure.
pub struct Timer(std::time::Instant);

impl Timer {
    /// Starts a timer.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Timer(std::time::Instant::now())
    }

    /// Elapsed seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}
