//! Measurement helpers shared by the perf binaries (`bench_perf`,
//! `bench_serve`).
//!
//! Everything here is about making wall-clock numbers comparable: a
//! steady-state warm-up, median estimators, a pure-ALU calibration loop
//! that tracks only the host's effective clock speed (so regression
//! gates can normalize out frequency drift), and the provenance stamps
//! (`git_revision`, the SIMD stanza) every `BENCH_*.json` carries.

use flash_runtime::simd;
use std::time::Instant;

/// Runs `f` repeatedly for at least `ms` milliseconds (and at least
/// `min_reps` times, capped at 4096). Sub-millisecond benches sample so
/// briefly that a CPU still climbing out of its idle frequency state
/// poisons every rep; burning a fixed wall-clock budget first keeps the
/// timed region in steady state.
pub fn warm_up(ms: u64, min_reps: usize, mut f: impl FnMut()) {
    let t = Instant::now();
    let mut n = 0usize;
    while n < min_reps || (t.elapsed().as_millis() as u64) < ms {
        f();
        n += 1;
        if n >= 4096 {
            break;
        }
    }
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
pub fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Median milliseconds of a fixed pure-ALU calibration loop.
///
/// The loop is deterministic, allocation-free, and independent of every
/// repo code path, so its runtime tracks only the host's effective clock
/// speed. Recording it next to each benchmark median lets the
/// regression gate compare *calibration-normalized* ratios: a host that
/// throttles to half speed slows the calibration loop by the same
/// factor as the benchmark, and the quotient is unchanged.
pub fn calibration_ms() -> f64 {
    // Eight independent multiply chains keep the integer-multiply ports
    // saturated the way the NTT/fixed-FFT hot loops do. A single
    // latency-bound chain would be blind to SMT-sibling port contention
    // — the dominant interference on shared hosts — and report "full
    // speed" while the benchmark itself runs 1.5x slower.
    fn burn() -> u64 {
        let mut a = [1u64, 3, 5, 7, 11, 13, 17, 19];
        for i in 0..200_000u64 {
            for (j, x) in a.iter_mut().enumerate() {
                *x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(i ^ j as u64);
            }
        }
        a.iter().fold(0, |s, &x| s ^ x)
    }
    let mut sink = 0u64;
    let ms = median_ms(9, || {
        sink = sink.wrapping_add(std::hint::black_box(burn()));
    });
    std::hint::black_box(sink);
    ms
}

/// The git revision the artifact was produced from, or `"unknown"`
/// outside a checkout.
pub fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// First `"key": <number>` occurrence in a flat JSON artifact. The
/// BENCH_*.json files are written by these binaries with one field per
/// line, so a line scanner is all the parsing they need.
pub fn parse_json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    for line in text.lines() {
        if let Some(pos) = line.find(&needle) {
            let rest = &line[pos + needle.len()..];
            let num: String = rest
                .chars()
                .skip_while(|c| c.is_whitespace())
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            if let Ok(v) = num.parse() {
                return Some(v);
            }
        }
    }
    None
}

/// The `"simd"` stanza every artifact carries next to
/// `host_parallelism`/`git_revision`: the compile-time target features,
/// the runtime-detected tier (after the `FLASH_SIMD` cap), and the tier
/// the dispatchers actually used for this run (after `--no-simd` /
/// `force_level`). A perf number is meaningless without knowing which
/// kernels produced it.
pub fn simd_json() -> String {
    let active = simd::level();
    format!(
        "  \"simd\": {{\"target_features\": \"{}\", \"detected\": \"{}\", \"dispatch\": \"{}\", \"lanes\": {}}},\n",
        simd::compile_target_features(),
        simd::detected_level().name(),
        active.name(),
        active.lanes()
    )
}
