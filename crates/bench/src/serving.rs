//! The shared serving-bench fixture: one registered model, a fleet of
//! simulated client sessions, and a timed dispatch wave.
//!
//! `bench_serve` and the `bench_perf --check-regression` serve gate
//! both run [`run_wave`] on the *same* model and fleet shape, so the
//! committed `BENCH_serve.json` baseline and the gate's fresh
//! measurement are directly comparable.
//!
//! The model is sized so the per-request work the serial baseline
//! cannot hoist dominates its pipeline: a 64×16×16 input packs 4
//! channels per ring slot into 16 groups, so every serial request
//! re-derives 16 NTT-domain weight-residue groups per output channel
//! (plus the per-unit noise bounds) before it can MAC, while the
//! batched path reads the same residues from the registration-time
//! plan. A full coalesced batch (16 tickets × 16 ciphertexts) runs the
//! shared forward sweep and the lazy Shoup MACs over one
//! structure-of-arrays buffer at full SIMD occupancy, then drains the
//! accumulators ticket-by-ticket so the inverse stays L2-resident.

use flash_2pc::transport::{FaultConfig, FaultPlan, TransportConfig};
use flash_2pc::{expected_conv_mod, ShareRing};
use flash_he::encoding::ConvShape;
use flash_he::{HeParams, PolyMulBackend};
use flash_serve::{BatchPolicy, Client, InferenceServer, ModelSpec, ServerStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Server mask seed — fixed so every wave is reproducible.
pub const SERVER_SEED: u64 = 0x5EED_F1A5;

/// The registered model id.
pub const MODEL_ID: u64 = 7;

/// Scheme parameters of the serving fixture: production-shaped ring
/// (`N = 1024`), `t = 2^13` (ample for 4-bit quantized sums), 36-bit
/// `q` — enough noise ceiling that every unit of the registered plan
/// passes the exact-path noise guard.
pub fn params() -> HeParams {
    HeParams::new(1024, 36, 1 << 13, 3.2)
}

/// The conv layer every session runs: 64×16×16 → 8, 3×3. Four channels
/// pack per ciphertext (16 groups, 16 upload ciphertexts), one band,
/// 8 response units.
pub fn shape() -> ConvShape {
    ConvShape {
        c: 64,
        h: 16,
        w: 16,
        m: 8,
        k: 3,
    }
}

/// Deterministic 4-bit-ish weights.
pub fn weights() -> Vec<i64> {
    let s = shape();
    (0..s.m * s.kernel_len())
        .map(|i| ((i as i64 * 5 + 3) % 15) - 7)
        .collect()
}

/// The model registration: approximate-FFT backend with response
/// truncation.
pub fn spec() -> ModelSpec {
    ModelSpec::new(MODEL_ID, params(), shape(), PolyMulBackend::Ntt, weights())
        .with_truncation(8, 2)
}

/// Per-tag transport configs of a chaos wave: odd tags get moderate
/// random fault plans (seeded by the tag) on both links, even tags run
/// clean. The fixed seeds make the whole wave a pure function of its
/// arguments.
pub fn chaos_cfg(tag: u64) -> (TransportConfig, TransportConfig) {
    if tag % 2 == 1 {
        (
            TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(0xAC1D + 2 * tag))),
            TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(
                0xFACE + 2 * tag + 1,
            ))),
        )
    } else {
        (TransportConfig::default(), TransportConfig::default())
    }
}

/// One measured dispatch wave.
#[derive(Debug, Clone)]
pub struct Wave {
    /// Sessions that connected.
    pub connected: usize,
    /// Requests that entered the timed region.
    pub dispatched: u64,
    /// Requests whose response the client collected.
    pub answered: u64,
    /// Wall-clock seconds of the timed region (dispatch → last
    /// terminal outcome).
    pub elapsed_s: f64,
    /// Server-side submission → response latency percentiles, ms.
    pub p50_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Aggregate server accounting of the wave.
    pub stats: ServerStats,
    /// Sessions the server poisoned.
    pub failed_sessions: usize,
    /// Wire faults detected (and recovered or escalated) across all
    /// sessions.
    pub faults_detected: u64,
}

impl Wave {
    /// Aggregate throughput over the timed region, requests/s.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.dispatched as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Mean timed-region cost per request, ms.
    pub fn ms_per_req(&self) -> f64 {
        if self.dispatched > 0 {
            self.elapsed_s * 1e3 / self.dispatched as f64
        } else {
            0.0
        }
    }
}

/// Runs one wave: starts a server under `policy`, connects `n_clients`
/// sessions, prepares `reqs` requests per session *untimed* (share
/// split, encode, encrypt, serialize are client-local work), then
/// times round-robin dispatch of every request through to the last
/// terminal outcome. Collection and decryption run untimed afterwards,
/// with one spot-check against the cleartext convolution.
pub fn run_wave(
    policy: BatchPolicy,
    workers: usize,
    n_clients: u64,
    reqs: u64,
    chaos: bool,
) -> Wave {
    let server = InferenceServer::start(policy, SERVER_SEED, workers);
    server
        .register_model(spec())
        .expect("fixture model registers");
    let p = params();
    let timeout = Duration::from_secs(10);

    let mut clients: Vec<(u64, Client, StdRng)> = Vec::new();
    for tag in 0..n_clients {
        let (up, down) = if chaos {
            chaos_cfg(tag)
        } else {
            (TransportConfig::default(), TransportConfig::default())
        };
        let mut rng = StdRng::seed_from_u64(0x51E7 + tag);
        match Client::connect(
            &server,
            MODEL_ID,
            tag,
            p.clone(),
            shape(),
            up,
            down,
            timeout,
            &mut rng,
        ) {
            Ok(c) => clients.push((tag, c, rng)),
            Err(_) if chaos => {} // a faulted handshake only loses that session
            Err(e) => panic!("clean connect failed for tag {tag}: {e}"),
        }
    }
    let connected = clients.len();

    // Prepare everything up front: [client][req].
    let input_len = shape().input_len();
    let mut prepared: Vec<Vec<flash_serve::PreparedRequest>> = Vec::with_capacity(connected);
    let mut probe_input: Option<Vec<i64>> = None;
    for (tag, client, rng) in clients.iter_mut() {
        let mut per_client = Vec::with_capacity(reqs as usize);
        for req_id in 0..reqs {
            let x: Vec<i64> = (0..input_len).map(|_| rng.gen_range(-8..8)).collect();
            if *tag == 0 && req_id == 0 {
                probe_input = Some(x.clone());
            }
            per_client.push(client.prepare(req_id, &x, rng));
        }
        prepared.push(per_client);
    }

    // Timed region: round-robin dispatch + drain to the last terminal
    // outcome. Request r of every live session enters before r+1 of
    // any, so the coalescing window sees cross-session traffic.
    let mut live: Vec<bool> = vec![true; connected];
    let mut dispatched = 0u64;
    let t0 = Instant::now();
    // Round-major on purpose: `r` indexes the *second* axis of
    // `prepared`, which is walked client-major inside.
    #[allow(clippy::needless_range_loop)]
    for r in 0..reqs as usize {
        for (i, (_, client, _)) in clients.iter_mut().enumerate() {
            if !live[i] {
                continue;
            }
            // Only an `Ok` dispatch owes a terminal outcome (response
            // or refusal); an `Err` return *is* the terminal outcome,
            // so counting it would stall the drain below forever.
            if client.dispatch(&server, &prepared[i][r]).is_ok() {
                dispatched += 1;
            } else {
                live[i] = false;
            }
        }
    }
    assert!(
        server.wait_for_timeout(dispatched, Duration::from_secs(300)),
        "wave stalled: server never reached {dispatched} terminal outcomes"
    );
    let elapsed_s = t0.elapsed().as_secs_f64();

    // Untimed: drain responses, spot-check one reconstruction.
    let mut answered = 0u64;
    for (i, (tag, client, _)) in clients.iter_mut().enumerate() {
        if !live[i] {
            continue;
        }
        for _ in 0..reqs {
            match client.collect() {
                Ok((req_id, y_client)) => {
                    answered += 1;
                    if *tag == 0 && req_id == 0 {
                        let y_server = server
                            .take_result(client.session_id(), req_id)
                            .expect("answered request leaves a server share");
                        let ring = ShareRing::new(p.t.trailing_zeros());
                        let got = ring.reconstruct_vec(&y_client, &y_server);
                        let want = expected_conv_mod(
                            probe_input.as_ref().expect("probe prepared"),
                            &weights(),
                            &shape(),
                            ring,
                        );
                        assert_eq!(got, want, "wave output must match cleartext conv");
                    }
                }
                Err(_) => break,
            }
        }
    }

    let mut lat = server.take_latencies_us();
    lat.sort_unstable();
    let pctl = |q: f64| {
        if lat.is_empty() {
            0.0
        } else {
            lat[((lat.len() - 1) as f64 * q) as usize] as f64 / 1e3
        }
    };
    let snapshots = server.session_snapshots();
    let wave = Wave {
        connected,
        dispatched,
        answered,
        elapsed_s,
        p50_ms: pctl(0.5),
        p99_ms: pctl(0.99),
        stats: server.stats(),
        failed_sessions: snapshots.iter().filter(|s| s.failed).count(),
        faults_detected: snapshots.iter().map(|s| s.faults_detected).sum(),
    };
    server.shutdown();
    wave
}
