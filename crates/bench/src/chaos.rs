//! The chaos SLO harness: one grid cell = one serving wave under a
//! controlled mix of link faults, queue overload and injected worker
//! panics, with the resilience invariants asserted inside the run.
//!
//! Each cell reuses the [`serving`] fixture (same model, same wire
//! stack) and measures three things the resilience layer promises:
//!
//! 1. **Terminal-outcome dichotomy** — every `Ok` dispatch is answered
//!    by exactly one response *xor* one typed refusal
//!    (`requests_ok + requests_refused == dispatched`, and no clean
//!    session ever sees a duplicate or missing outcome);
//! 2. **Correctness under chaos** — every *answered* clean-session
//!    request reconstructs bit-exactly to the cleartext convolution
//!    (`agreement == 1.0`), so chaos can degrade availability but
//!    never silently corrupt a result;
//! 3. **Blast-radius containment** — clean-session latency percentiles
//!    are computed with faulted sessions excluded, so `bench_chaos`
//!    can gate them against the matching fault-free cell.
//!
//! Faulted sessions carry seeded moderate fault plans on the **uplink
//! only**: uplink chaos exercises the retransmission, breaker and
//! poison paths, while a clean downlink keeps the server-side outcome
//! ledger exact (a faulted downlink can eat the final frame *after*
//! the server counted it, which turns invariant 1 into an inequality).
//! Everything is a pure function of the cell spec — fault plans, client
//! keys and activations all derive from fixed seeds.

use crate::serving::{self, MODEL_ID, SERVER_SEED};
use flash_2pc::transport::{FaultConfig, FaultPlan, TransportConfig};
use flash_2pc::{expected_conv_mod, ShareRing};
use flash_serve::{
    BatchPolicy, ChaosAction, Client, InferenceServer, Priority, RefusalReason, ResiliencePolicy,
    ServeError, ServerStats,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One cell of the fault-rate × overload grid.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec {
    /// Grid label (also the artifact key).
    pub name: &'static str,
    /// Fraction of sessions given a seeded moderate uplink fault plan.
    pub fault_fraction: f64,
    /// Demand over queue capacity: `1.0` sizes the queue to hold the
    /// whole wave (no shedding possible), `2.0` halves it so the
    /// admission gate must shed under the dispatch burst.
    pub overload_x: f64,
    /// Inject one worker panic (first request of the last session) to
    /// drive the containment/bisection path.
    pub poison: bool,
}

/// The measured outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Sessions that connected (faulted handshakes may lose theirs).
    pub connected: usize,
    /// Sessions running a faulted uplink.
    pub faulty_sessions: u64,
    /// Dispatches that returned `Ok` — each owes one terminal outcome.
    pub dispatched: u64,
    /// Dispatches that returned a typed error (terminal at the call).
    pub dispatch_errors: u64,
    /// Outcomes the clients collected as responses.
    pub answered: u64,
    /// Outcomes the clients collected as typed refusals, by class.
    pub refused: u64,
    /// Refusal counts keyed by reason class.
    pub refusals: BTreeMap<&'static str, u64>,
    /// Collects that failed on the client's own faulted link.
    pub collect_errors: u64,
    /// Answered requests from clean sessions (the agreement base).
    pub clean_answered: u64,
    /// Fraction of `clean_answered` matching the cleartext conv.
    pub clean_agreement: f64,
    /// Clean-session latency percentiles, ms.
    pub clean_p50_ms: f64,
    /// 99th percentile over clean sessions only, ms.
    pub clean_p99_ms: f64,
    /// Timed region: dispatch through last terminal outcome, seconds.
    pub elapsed_s: f64,
    /// Aggregate server accounting.
    pub stats: ServerStats,
    /// Sessions the server poisoned.
    pub failed_sessions: usize,
    /// Wire faults detected across all sessions.
    pub faults_detected: u64,
}

impl CellOutcome {
    /// Mean timed cost per `Ok`-dispatched request, ms.
    pub fn ms_per_req(&self) -> f64 {
        if self.dispatched > 0 {
            self.elapsed_s * 1e3 / self.dispatched as f64
        } else {
            0.0
        }
    }
}

fn reason_class(reason: &RefusalReason) -> &'static str {
    match reason {
        RefusalReason::Expired => "expired",
        RefusalReason::Shed => "shed",
        RefusalReason::Quarantined => "quarantined",
        RefusalReason::Poisoned => "poisoned",
        RefusalReason::Shutdown => "shutdown",
        RefusalReason::Invalid(_) => "invalid",
    }
}

/// Runs one grid cell: `sessions` clients × `reqs` requests against
/// `workers` workers under the cell's fault/overload/poison mix, with
/// the dichotomy and agreement invariants asserted before returning.
pub fn run_cell(spec: &CellSpec, sessions: u64, reqs: u64, workers: usize) -> CellOutcome {
    let demand = sessions * reqs;
    let queue_depth = if spec.overload_x > 1.0 {
        ((demand as f64 / spec.overload_x).ceil() as usize).max(1)
    } else {
        demand as usize
    };
    let mut policy = BatchPolicy::batched();
    policy.queue_depth = queue_depth;
    let policy = policy.with_resilience(ResiliencePolicy {
        // Generous: present so the eviction path is armed, long enough
        // that only a genuinely wedged wave trips it.
        request_deadline: Some(Duration::from_secs(10)),
        shed: true,
        ..ResiliencePolicy::default()
    });
    let faulty_n = (spec.fault_fraction * sessions as f64).round() as u64;
    // The protected tag: last session, always clean. It is the poison
    // target in poison cells and runs at `High` priority in overload
    // cells (the priority knob must exempt it from shedding).
    let protected_tag = sessions - 1;
    assert!(
        faulty_n < sessions,
        "the grid needs at least one clean session"
    );

    let server = InferenceServer::start(policy, SERVER_SEED, workers);
    server
        .register_model(serving::spec())
        .expect("fixture model registers");
    let p = serving::params();
    let shape = serving::shape();
    let weights = serving::weights();
    let ring = ShareRing::new(p.t.trailing_zeros());
    let timeout = Duration::from_secs(10);

    let mut clients: Vec<(u64, Client, StdRng)> = Vec::new();
    for tag in 0..sessions {
        let up = if tag < faulty_n {
            TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(0xC4A0 + 3 * tag)))
        } else {
            TransportConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(0xC0DE + tag);
        match Client::connect(
            &server,
            MODEL_ID,
            tag,
            p.clone(),
            shape,
            up,
            TransportConfig::default(),
            timeout,
            &mut rng,
        ) {
            Ok(c) => clients.push((tag, c, rng)),
            Err(_) if tag < faulty_n => {} // a faulted handshake only loses that session
            Err(e) => panic!("clean connect failed for tag {tag}: {e}"),
        }
    }
    let connected = clients.len();
    let sid_of: BTreeMap<u64, u32> = clients
        .iter()
        .map(|(tag, c, _)| (*tag, c.session_id()))
        .collect();

    if spec.poison {
        let sid = sid_of[&protected_tag];
        server.set_chaos_hook(Some(Arc::new(move |s: u32, req: u64| {
            if s == sid && req == 0 {
                ChaosAction::Panic
            } else {
                ChaosAction::None
            }
        })));
    }
    if spec.overload_x > 1.0 {
        assert!(
            server.set_session_priority(sid_of[&protected_tag], Priority::High),
            "priority knob targets a live session"
        );
    }

    // Untimed client-local prepare; inputs are kept for the agreement
    // check against the cleartext convolution.
    let input_len = shape.input_len();
    let mut prepared: Vec<Vec<flash_serve::PreparedRequest>> = Vec::with_capacity(connected);
    let mut inputs: Vec<Vec<Vec<i64>>> = Vec::with_capacity(connected);
    for (_, client, rng) in clients.iter_mut() {
        let mut per_client = Vec::with_capacity(reqs as usize);
        let mut per_inputs = Vec::with_capacity(reqs as usize);
        for req_id in 0..reqs {
            let x: Vec<i64> = (0..input_len).map(|_| rng.gen_range(-8..8)).collect();
            per_client.push(client.prepare(req_id, &x, rng));
            per_inputs.push(x);
        }
        prepared.push(per_client);
        inputs.push(per_inputs);
    }

    // Timed region: round-robin dispatch + drain. Only an `Ok`
    // dispatch owes a terminal outcome; an `Err` is itself terminal
    // and retires the session (the uplink is positional).
    let mut live: Vec<bool> = vec![true; connected];
    let mut ok_reqs: Vec<Vec<u64>> = vec![Vec::new(); connected];
    let mut dispatch_errors = 0u64;
    let t0 = Instant::now();
    #[allow(clippy::needless_range_loop)]
    for r in 0..reqs as usize {
        for (i, (_, client, _)) in clients.iter_mut().enumerate() {
            if !live[i] {
                continue;
            }
            match client.dispatch(&server, &prepared[i][r]) {
                Ok(()) => ok_reqs[i].push(r as u64),
                Err(_) => {
                    dispatch_errors += 1;
                    live[i] = false;
                }
            }
        }
    }
    let dispatched: u64 = ok_reqs.iter().map(|r| r.len() as u64).sum();
    assert!(
        server.wait_for_timeout(dispatched, Duration::from_secs(300)),
        "{}: wave stalled before {dispatched} terminal outcomes",
        spec.name
    );
    let elapsed_s = t0.elapsed().as_secs_f64();

    // Untimed drain. Every clean session must observe exactly one
    // outcome per `Ok` dispatch, no duplicates, no leftovers; faulted
    // sessions may lose their link mid-drain (their remaining outcomes
    // stay in the server-side ledger checked below).
    let mut answered = 0u64;
    let mut refused = 0u64;
    let mut collect_errors = 0u64;
    let mut clean_answered = 0u64;
    let mut clean_matches = 0u64;
    let mut refusals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (i, (tag, client, _)) in clients.iter_mut().enumerate() {
        let clean = *tag >= faulty_n;
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..ok_reqs[i].len() {
            match client.collect() {
                Ok((req_id, y_client)) => {
                    assert!(
                        seen.insert(req_id),
                        "{}: tag {tag} req {req_id} answered twice",
                        spec.name
                    );
                    answered += 1;
                    if clean {
                        clean_answered += 1;
                        let y_server = server
                            .take_result(client.session_id(), req_id)
                            .expect("answered request leaves a server share");
                        let got = ring.reconstruct_vec(&y_client, &y_server);
                        let want =
                            expected_conv_mod(&inputs[i][req_id as usize], &weights, &shape, ring);
                        if got == want {
                            clean_matches += 1;
                        }
                    }
                }
                Err(ServeError::Refused { req_id, reason }) => {
                    assert!(
                        seen.insert(req_id),
                        "{}: tag {tag} req {req_id} refused after an earlier outcome",
                        spec.name
                    );
                    if *tag == protected_tag && spec.overload_x > 1.0 {
                        assert!(
                            !matches!(reason, RefusalReason::Shed),
                            "{}: high-priority session was shed",
                            spec.name
                        );
                    }
                    refused += 1;
                    *refusals.entry(reason_class(&reason)).or_default() += 1;
                }
                Err(_) => {
                    assert!(!clean, "{}: clean tag {tag} lost its downlink", spec.name);
                    collect_errors += 1;
                    break;
                }
            }
        }
        if clean {
            assert_eq!(
                seen.len(),
                ok_reqs[i].len(),
                "{}: clean tag {tag} is missing terminal outcomes",
                spec.name
            );
        }
    }

    let stats = server.stats();
    // The dichotomy ledger: with clean downlinks every `Ok` dispatch is
    // answered or refused exactly once, server-side.
    assert_eq!(
        stats.requests_ok + stats.requests_refused,
        dispatched,
        "{}: terminal-outcome ledger does not balance",
        spec.name
    );
    let clean_agreement = if clean_answered == 0 {
        1.0
    } else {
        clean_matches as f64 / clean_answered as f64
    };
    assert_eq!(
        clean_agreement, 1.0,
        "{}: {clean_matches}/{clean_answered} clean answers matched the cleartext conv",
        spec.name
    );

    let clean_sids: BTreeSet<u32> = sid_of
        .iter()
        .filter(|(tag, _)| **tag >= faulty_n)
        .map(|(_, sid)| *sid)
        .collect();
    let mut lat: Vec<u64> = server
        .take_latencies_tagged()
        .into_iter()
        .filter(|(sid, _)| clean_sids.contains(sid))
        .map(|(_, us)| us)
        .collect();
    lat.sort_unstable();
    let pctl = |q: f64| {
        if lat.is_empty() {
            0.0
        } else {
            lat[((lat.len() - 1) as f64 * q) as usize] as f64 / 1e3
        }
    };
    let (clean_p50_ms, clean_p99_ms) = (pctl(0.5), pctl(0.99));

    let snapshots = server.session_snapshots();
    let outcome = CellOutcome {
        connected,
        faulty_sessions: faulty_n,
        dispatched,
        dispatch_errors,
        answered,
        refused,
        refusals,
        collect_errors,
        clean_answered,
        clean_agreement,
        clean_p50_ms,
        clean_p99_ms,
        elapsed_s,
        stats,
        failed_sessions: snapshots.iter().filter(|s| s.failed).count(),
        faults_detected: snapshots.iter().map(|s| s.faults_detected).sum(),
    };
    server.shutdown();
    outcome
}
