//! Criterion benchmarks of the transform kernels: exact NTT vs `f64`
//! negacyclic FFT vs fixed-point approximate FFT vs sparse FFT, at the
//! paper's `N = 4096`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash_fft::fixed_fft::FixedNegacyclicFft;
use flash_fft::NegacyclicFft;
use flash_he::HeParams;
use flash_math::C64;
use flash_ntt::transform::forward;
use flash_sparse::executor::SparseFft;
use std::hint::black_box;

fn bench_transforms(c: &mut Criterion) {
    let p = HeParams::flash_default();
    let n = p.n;
    let mut group = c.benchmark_group("transforms_n4096");

    // Exact NTT (the baseline datapath).
    let data: Vec<u64> = (0..n as u64).map(|i| i * 7919 % p.q).collect();
    group.bench_function("ntt_forward", |b| {
        b.iter(|| {
            let mut v = data.clone();
            forward(&mut v, p.ntt());
            black_box(v)
        })
    });

    // f64 negacyclic FFT.
    let plan = NegacyclicFft::new(n);
    let real: Vec<f64> = (0..n).map(|i| ((i * 31) % 256) as f64 - 128.0).collect();
    group.bench_function("fft_f64_forward", |b| {
        b.iter(|| black_box(plan.forward(black_box(&real))))
    });

    // Fixed-point approximate FFT at the FLASH operating point.
    let cfg = flash_accel::config::FlashConfig::numerics_for(n, 27, 5);
    let fixed = FixedNegacyclicFft::new(cfg);
    let weights: Vec<i64> = (0..n).map(|i| if i % 455 == 0 { 5 } else { 0 }).collect();
    group.bench_function("approx_fxp_forward", |b| {
        b.iter(|| black_box(fixed.forward(black_box(&weights))))
    });

    // Sparse executor on a Cheetah-like weight pattern.
    let sp = SparseFft::new(n / 2);
    let mut folded = vec![C64::ZERO; n / 2];
    for i in 0..9 {
        folded[i * 64] = C64::new(3.0, -1.0);
    }
    group.bench_function("sparse_fft_9nnz", |b| {
        b.iter(|| black_box(sp.transform(black_box(&folded))))
    });

    // Dense reference through the same executor.
    let dense: Vec<C64> = (0..n / 2)
        .map(|i| C64::new((i % 17) as f64, (i % 5) as f64))
        .collect();
    group.bench_function("sparse_fft_dense_input", |b| {
        b.iter(|| black_box(sp.transform(black_box(&dense))))
    });

    group.finish();
}

fn bench_radix_and_rns(c: &mut Criterion) {
    use flash_fft::dft::Direction;
    use flash_fft::radix4::fft_radix4;
    use flash_he::rns::{RnsParams, RnsSecretKey};
    use flash_he::Poly;
    use rand::SeedableRng;

    let mut group = c.benchmark_group("variants");
    // radix-4 vs radix-2 at 2048 points
    let m = 2048;
    let x: Vec<C64> = (0..m)
        .map(|i| C64::new((i % 37) as f64, -((i % 11) as f64)))
        .collect();
    let plan = flash_fft::fft64::FftPlan::new(m);
    group.bench_function("radix2_2048", |b| {
        b.iter(|| {
            let mut v = x.clone();
            plan.transform(&mut v, Direction::Negative);
            black_box(v)
        })
    });
    group.bench_function("radix4_2048", |b| {
        b.iter(|| black_box(fft_radix4(black_box(&x), Direction::Negative)))
    });

    // single-limb vs double-limb BFV plaintext multiplication
    let p1 = HeParams::test_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sk1 = flash_he::SecretKey::generate(&p1, &mut rng);
    let m1 = Poly::uniform(p1.n, p1.t, &mut rng);
    let ct1 = sk1.encrypt(&m1, &mut rng);
    let mut w = vec![0i64; p1.n];
    for i in 0..9 {
        w[i * 17] = 5 - i as i64;
    }
    group.bench_function("bfv_mul_plain_1limb", |b| {
        b.iter(|| black_box(ct1.mul_plain_signed(&w, &p1, &flash_he::PolyMulBackend::Ntt)))
    });
    let p2 = RnsParams::test_double();
    let sk2 = RnsSecretKey::generate(&p2, &mut rng);
    let m2 = Poly::uniform(p2.n, p2.t, &mut rng);
    let ct2 = sk2.encrypt(&m2, &mut rng);
    group.bench_function("bfv_mul_plain_2limb", |b| {
        b.iter(|| black_box(ct2.mul_plain_signed(&w, &p2)))
    });
    group.finish();
}

fn bench_mult_counting(c: &mut Criterion) {
    use flash_sparse::pattern::SparsityPattern;
    use flash_sparse::symbolic::analyze;
    let mut group = c.benchmark_group("dataflow_analysis");
    for nnz in [1usize, 9, 144] {
        let p = SparsityPattern::from_indices(2048, (0..nnz).map(|i| (i * 193) % 2048));
        group.bench_with_input(BenchmarkId::new("analyze_2048", nnz), &p, |b, p| {
            b.iter(|| black_box(analyze(black_box(&p.bit_reversed()))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transforms,
    bench_radix_and_rns,
    bench_mult_counting
);
criterion_main!(benches);
