//! Criterion benchmarks of the homomorphic-convolution protocol at a
//! test-scale ring (`N = 256`): backend comparison for `ct ⊠ pt` and the
//! full client/server round.

use criterion::{criterion_group, criterion_main, Criterion};
use flash_2pc::protocol::ConvProtocol;
use flash_he::encoding::ConvShape;
use flash_he::{HeParams, Poly, PolyMulBackend, SecretKey};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let p = HeParams::test_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = Poly::uniform(p.n, p.q, &mut rng);
    let mut w = vec![0i64; p.n];
    for i in 0..9 {
        w[i * 25] = 5 - i as i64;
    }
    let approx =
        PolyMulBackend::approx(flash_accel::config::FlashConfig::numerics_for(p.n, 30, 12));
    let mut group = c.benchmark_group("ct_x_pt_n256");
    for (name, backend) in [
        ("ntt", PolyMulBackend::Ntt),
        ("fft_f64", PolyMulBackend::FftF64),
        ("approx_fxp", approx),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(backend.mul_ct_pt(black_box(&a), black_box(&w), &p)))
        });
    }
    let p2 = HeParams::pow2_test_256();
    let a2 = Poly::uniform(p2.n, p2.q, &mut rng);
    group.bench_function("pow2_wrap", |b| {
        b.iter(|| black_box(PolyMulBackend::Pow2.mul_ct_pt(black_box(&a2), black_box(&w), &p2)))
    });
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let p = HeParams::test_256();
    let shape = ConvShape {
        c: 2,
        h: 6,
        w: 6,
        m: 2,
        k: 3,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let sk = SecretKey::generate(&p, &mut rng);
    let x: Vec<i64> = (0..shape.input_len())
        .map(|i| (i as i64 % 15) - 7)
        .collect();
    let w: Vec<i64> = (0..shape.m * shape.kernel_len())
        .map(|i| (i as i64 % 13) - 6)
        .collect();
    let mut group = c.benchmark_group("hconv_protocol_n256");
    group.sample_size(20);
    for (name, backend) in [
        ("ntt", PolyMulBackend::Ntt),
        ("fft_f64", PolyMulBackend::FftF64),
    ] {
        let proto = ConvProtocol::new(p.clone(), shape, backend);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut r = rand::rngs::StdRng::seed_from_u64(3);
                black_box(proto.run(&sk, &x, &w, &mut r).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_protocol);
criterion_main!(benches);
