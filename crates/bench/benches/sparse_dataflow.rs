//! Criterion benchmarks of the end-to-end performance model: per-layer
//! workload extraction and whole-network scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use flash_accel::config::FlashConfig;
use flash_accel::inference::run_network;
use flash_accel::workload::layer_workload;
use flash_nn::layers::ConvLayerSpec;
use flash_nn::resnet::resnet18_conv_layers;
use std::hint::black_box;

fn bench_workload_extraction(c: &mut Criterion) {
    let spec = ConvLayerSpec {
        name: "layer1.0.conv1".into(),
        c: 64,
        h: 56,
        w: 56,
        m: 64,
        k: 3,
        stride: 1,
        pad: 1,
    };
    c.bench_function("layer_workload_56x56", |b| {
        b.iter(|| black_box(layer_workload(black_box(&spec), 4096)))
    });
}

fn bench_network_model(c: &mut Criterion) {
    let cfg = FlashConfig::paper_default();
    let net = resnet18_conv_layers();
    let mut group = c.benchmark_group("network_model");
    group.sample_size(10);
    group.bench_function("resnet18_full_run", |b| {
        b.iter(|| black_box(run_network(black_box(&net), &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_workload_extraction, bench_network_model);
criterion_main!(benches);
