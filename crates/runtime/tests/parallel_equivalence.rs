//! Property tests for the determinism contract: a parallel map must be
//! bit-identical to the sequential map for every worker count.

use flash_runtime::{parallel_gen_with, parallel_map_with};
use proptest::prelude::*;

proptest! {
    #[test]
    fn parallel_map_matches_sequential(
        items in prop::collection::vec(any::<u64>(), 0..200),
        threads in 1usize..12,
    ) {
        let f = |x: &u64| x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        let seq: Vec<u64> = items.iter().map(f).collect();
        prop_assert_eq!(parallel_map_with(threads, &items, f), seq);
    }

    #[test]
    fn parallel_gen_matches_sequential(
        len in 0usize..300,
        threads in 1usize..12,
        salt in any::<u64>(),
    ) {
        let f = |i: usize| (i as u64).wrapping_mul(salt) ^ salt.rotate_right(i as u32 % 64);
        let seq: Vec<u64> = (0..len).map(f).collect();
        prop_assert_eq!(parallel_gen_with(threads, len, f), seq);
    }

    #[test]
    fn float_results_are_bit_identical(
        items in prop::collection::vec(-1e6f64..1e6, 1..128),
        threads in 2usize..9,
    ) {
        // Floating point is where silent reassociation would show up;
        // the fixed chunk->index mapping must keep every bit.
        let f = |x: &f64| (x.sin() * 1e9).mul_add(*x, 1.0 / (x.abs() + 1.0));
        let seq: Vec<u64> = items.iter().map(|x| f(x).to_bits()).collect();
        let par: Vec<u64> = parallel_map_with(threads, &items, f)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        prop_assert_eq!(par, seq);
    }
}
