//! Parallel execution runtime and plan-cache primitives.
//!
//! Every layer of the FLASH stack runs data-parallel loops (per-layer
//! workload extraction, per-channel weight transforms, Monte-Carlo
//! trials, DSE candidate batches) and rebuilds transform plans (NTT
//! tables, FFT twiddle/twist tables, symbolic sparsity analyses) on hot
//! paths. This crate provides the two shared levers:
//!
//! * [`parallel_map`] / [`parallel_map_with`] — a `std::thread::scope`
//!   chunked parallel map with a configurable worker count
//!   (`FLASH_THREADS`, or [`set_threads`]), falling back to plain
//!   sequential iteration for one worker or tiny inputs. The chunk →
//!   index mapping is fixed, so results are **bit-identical** to the
//!   sequential map for any thread count.
//! * [`Interner`] — a `Mutex`-backed map interning expensive immutable
//!   plan objects behind `Arc`s, with hit/miss counters. The concrete
//!   process-wide caches live next to the types they cache
//!   (`flash_ntt::NttTables::shared`, `flash_fft::NegacyclicFft::shared`,
//!   `flash_fft::fixed_fft::FixedNegacyclicFft::shared`,
//!   `flash_sparse::symbolic::analyze_cached`) so the dependency graph
//!   stays acyclic; this crate depends only on `std`.
//! * [`ScratchPool`] — thread-local, size-classed buffer pools with RAII
//!   checkout ([`Scratch`]), making the transform hot paths
//!   allocation-free in steady state. Buffers are 64-byte aligned
//!   ([`AlignedBuf`]) so SoA SIMD lane loads never straddle cache lines.
//!   Concrete pools follow the same placement rule as the interners:
//!   [`U64_SCRATCH`] / [`F64_SCRATCH`] / [`I128_SCRATCH`] live here, the
//!   `C64` pool lives in `flash-fft`, and new ones are declared with
//!   [`scratch_pool!`].
//! * [`simd`] — runtime SIMD level detection and the process-wide lane
//!   width decision the batched spectral kernels dispatch on
//!   (`FLASH_SIMD` / [`simd::force_level`] override it for A/B runs).
//!
//! # Determinism contract
//!
//! `parallel_map(items, f)[i] == f(&items[i])` for every `i`, regardless
//! of the worker count, provided `f` is a pure function of its argument.
//! Code that needs randomness inside a parallel region must derive one
//! seed per item *before* fanning out (per-item RNG seeding), never share
//! a sequential RNG stream across items.

mod config;
mod exec;
mod interner;
pub mod queue;
mod scratch;
pub mod simd;

pub use config::{max_threads, noise_margin, set_threads, ThreadOverrideGuard};
pub use exec::{parallel_gen, parallel_gen_with, parallel_map, parallel_map_with};
pub use interner::{CacheStats, Interner};
pub use queue::{QueueClosed, WorkQueue};
pub use scratch::{
    AlignedBuf, PoolShelves, PoolStats, Scratch, ScratchPool, F64_SCRATCH, I128_SCRATCH,
    MAX_BUFFERS_PER_CLASS, SCRATCH_ALIGN, U64_SCRATCH,
};
