//! Worker-count resolution.
//!
//! Precedence: programmatic [`set_threads`] override, then the
//! `FLASH_THREADS` environment variable, then the host's available
//! parallelism. The result is clamped to at least 1.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Programmatic override; 0 means "unset, consult the environment".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`ThreadOverrideGuard`] holders so scoped overrides in
/// concurrently running tests cannot interleave.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Force the worker count for all subsequent parallel regions in this
/// process. `set_threads(0)` removes the override and restores
/// `FLASH_THREADS` / host-parallelism resolution.
///
/// Intended for tests and benchmarks that need to compare thread counts
/// within one process without mutating the environment.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Scoped thread-count override: sets [`set_threads`]`(n)` on
/// construction and restores the previous override value on drop.
///
/// [`set_threads`] writes a process-global atomic, so two tests poking
/// it concurrently race and one leaks its override into the other. The
/// guard fixes both hazards: it holds a process-wide lock for its
/// lifetime (guard users serialize against each other) and the restore
/// happens even if the protected scope panics.
///
/// ```
/// let guard = flash_runtime::ThreadOverrideGuard::set(2);
/// assert_eq!(flash_runtime::max_threads(), 2);
/// drop(guard); // previous override (usually "unset") is back
/// ```
#[must_use = "dropping the guard immediately restores the previous override"]
pub struct ThreadOverrideGuard {
    prev: usize,
    _lock: MutexGuard<'static, ()>,
}

impl ThreadOverrideGuard {
    /// Acquires the override lock (blocking on other guard holders) and
    /// forces the worker count to `n` until the guard drops. `n == 0`
    /// scopes an explicit "unset" (environment resolution).
    pub fn set(n: usize) -> Self {
        let lock = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = THREAD_OVERRIDE.swap(n, Ordering::SeqCst);
        ThreadOverrideGuard { prev, _lock: lock }
    }
}

impl Drop for ThreadOverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev, Ordering::SeqCst);
    }
}

/// The worker count parallel regions will use right now.
///
/// Resolution order:
/// 1. [`set_threads`] override, if non-zero;
/// 2. `FLASH_THREADS`, if set to a positive integer (non-numeric or zero
///    values are ignored);
/// 3. [`std::thread::available_parallelism`], defaulting to 1 if the
///    host cannot report it.
pub fn max_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("FLASH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The noise-guard safety margin, as a fraction of the decryption
/// ceiling `q/(2t)`.
///
/// Protocol layers compare their composed worst-case noise bound (exact
/// arithmetic plus the approximate-transform error model) against
/// `margin × ceiling` and fall back to the exact NTT backend above it.
/// Resolution: `FLASH_NOISE_MARGIN` if set to a finite float, else 1.0.
/// `0.0` forces the fallback for every approximate-backend band — a
/// deterministic hook for exercising the fallback path in tests.
pub fn noise_margin() -> f64 {
    if let Ok(v) = std::env::var("FLASH_NOISE_MARGIN") {
        if let Ok(m) = v.trim().parse::<f64>() {
            if m.is_finite() && m >= 0.0 {
                return m;
            }
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_margin_defaults_to_one() {
        // The test environment does not set FLASH_NOISE_MARGIN.
        assert_eq!(noise_margin(), 1.0);
    }

    #[test]
    fn override_wins_and_clears() {
        let guard = ThreadOverrideGuard::set(3);
        assert_eq!(max_threads(), 3);
        let prev = guard.prev;
        drop(guard);
        assert_eq!(THREAD_OVERRIDE.load(Ordering::SeqCst), prev);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn guard_restores_previous_override_and_survives_inner_sets() {
        let outer = ThreadOverrideGuard::set(5);
        assert_eq!(max_threads(), 5);
        // A nested guard from the same thread would deadlock on the
        // override lock; scoped-within-scoped uses the raw setter.
        set_threads(2);
        assert_eq!(max_threads(), 2);
        set_threads(5);
        assert_eq!(max_threads(), 5);
        let prev = outer.prev;
        drop(outer);
        assert_eq!(THREAD_OVERRIDE.load(Ordering::SeqCst), prev);
    }

    #[test]
    fn guard_restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            let _guard = ThreadOverrideGuard::set(7);
            assert_eq!(max_threads(), 7);
            panic!("scope panics");
        });
        assert!(result.is_err());
        // Taking a fresh guard serializes behind any concurrent test's
        // guard; the baseline it observes must not be the leaked 7.
        let check = ThreadOverrideGuard::set(1);
        assert_ne!(check.prev, 7, "override must not leak past panic");
    }
}
