//! Worker-count resolution.
//!
//! Precedence: programmatic [`set_threads`] override, then the
//! `FLASH_THREADS` environment variable, then the host's available
//! parallelism. The result is clamped to at least 1.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Programmatic override; 0 means "unset, consult the environment".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the worker count for all subsequent parallel regions in this
/// process. `set_threads(0)` removes the override and restores
/// `FLASH_THREADS` / host-parallelism resolution.
///
/// Intended for tests and benchmarks that need to compare thread counts
/// within one process without mutating the environment.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count parallel regions will use right now.
///
/// Resolution order:
/// 1. [`set_threads`] override, if non-zero;
/// 2. `FLASH_THREADS`, if set to a positive integer (non-numeric or zero
///    values are ignored);
/// 3. [`std::thread::available_parallelism`], defaulting to 1 if the
///    host cannot report it.
pub fn max_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("FLASH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_and_clears() {
        set_threads(3);
        assert_eq!(max_threads(), 3);
        set_threads(0);
        assert!(max_threads() >= 1);
    }
}
