//! Bounded MPMC work queue: the serving layer's backpressure primitive.
//!
//! A [`WorkQueue`] is a fixed-capacity FIFO shared by any number of
//! producer and consumer threads. Producers *block* when the queue is
//! full — that is the backpressure contract: a client that submits
//! faster than the workers drain is slowed at the submission call, not
//! buffered without bound. Consumers block when the queue is empty and
//! wake when work arrives or the queue is closed.
//!
//! [`WorkQueue::pop_batch`] is the batching hook: it blocks for the
//! first item, then greedily drains whatever else is already queued (up
//! to a cap) in one critical section — so a busy queue yields full
//! batches and an idle one yields singletons, with no artificial
//! batching delay in either case.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error returned when pushing to a closed queue; carries the rejected
/// item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueClosed<T>(pub T);

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer FIFO with blocking push/pop.
pub struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> WorkQueue<T> {
    /// Creates a queue holding at most `cap` items (`cap` ≥ 1 enforced).
    pub fn bounded(cap: usize) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until there is room, then enqueues. Fails (returning the
    /// item) only if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), QueueClosed<T>> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.items.len() >= self.cap && !st.closed {
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.closed {
            return Err(QueueClosed(item));
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues only if there is room right now; `Err` carries the item
    /// back on a full or closed queue.
    pub fn try_push(&self, item: T) -> Result<(), QueueClosed<T>> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed || st.items.len() >= self.cap {
            return Err(QueueClosed(item));
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; `None` means the queue was
    /// closed and fully drained (the consumer's shutdown signal).
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks for the first item, then drains up to `max` items total in
    /// one critical section. Returns an empty vec only when the queue is
    /// closed and drained.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !st.items.is_empty() {
                let take = st.items.len().min(max);
                let batch: Vec<T> = st.items.drain(..take).collect();
                drop(st);
                // Up to `take` slots opened; wake that many producers.
                for _ in 0..take {
                    self.not_full.notify_one();
                }
                return batch;
            }
            if st.closed {
                return Vec::new();
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: later pushes fail, consumers drain what is left
    /// and then observe shutdown. Idempotent.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`WorkQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_single_thread() {
        let q = WorkQueue::bounded(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let q = WorkQueue::bounded(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4), vec![0, 1, 2, 3]);
        assert_eq!(q.pop_batch(4), vec![4, 5]);
    }

    #[test]
    fn close_unblocks_consumers_and_rejects_producers() {
        let q = WorkQueue::<u32>::bounded(2);
        q.close();
        assert_eq!(q.push(1), Err(QueueClosed(1)));
        assert_eq!(q.pop(), None);
        assert!(q.pop_batch(4).is_empty());
    }

    #[test]
    fn drains_queued_items_after_close() {
        let q = WorkQueue::bounded(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_blocks_producer_until_pop() {
        let q = WorkQueue::bounded(1);
        q.push(10).unwrap();
        let unblocked = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                q.push(20).unwrap(); // blocks until the main thread pops
                unblocked.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(unblocked.load(Ordering::SeqCst), 0, "push must block");
            assert_eq!(q.pop(), Some(10));
            while q.is_empty() {
                std::thread::yield_now();
            }
            assert_eq!(q.pop(), Some(20));
        });
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let q = WorkQueue::bounded(4);
        let total = 200usize;
        let sum = AtomicUsize::new(0);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..2 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..total / 2 {
                        q.push(p * (total / 2) + i + 1).unwrap();
                    }
                });
            }
            for _ in 0..3 {
                let (q, sum, popped) = (&q, &sum, &popped);
                s.spawn(move || {
                    for batch in std::iter::from_fn(|| {
                        let b = q.pop_batch(8);
                        (!b.is_empty()).then_some(b)
                    }) {
                        for v in batch {
                            sum.fetch_add(v, Ordering::SeqCst);
                            popped.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
            while popped.load(Ordering::SeqCst) < total {
                std::thread::yield_now();
            }
            q.close();
        });
        assert_eq!(sum.load(Ordering::SeqCst), total * (total + 1) / 2);
    }
}
