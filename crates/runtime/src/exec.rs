//! Scoped-thread chunked parallel map.
//!
//! The map is split into at most `max_threads()` contiguous chunks; each
//! worker fills a fixed, disjoint index range of the output, so the
//! result is identical to the sequential map for any worker count. With
//! one worker (or when the input is smaller than the worker count) no
//! threads are spawned at all.

use crate::config::max_threads;

/// Below this many items the spawn cost dwarfs the work; stay sequential.
const MIN_PARALLEL_LEN: usize = 2;

/// Parallel version of `items.iter().map(f).collect()`.
///
/// `f` must be a pure function of its argument for the determinism
/// contract to hold (see the crate docs); the output at index `i` is
/// always `f(&items[i])`.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_gen(items.len(), |i| f(&items[i]))
}

/// [`parallel_map`] with an explicit worker count instead of the global
/// configuration.
pub fn parallel_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_gen_with(threads, items.len(), |i| f(&items[i]))
}

/// Parallel version of `(0..len).map(f).collect()`.
pub fn parallel_gen<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    parallel_gen_with(max_threads(), len, f)
}

/// [`parallel_gen`] with an explicit worker count.
pub fn parallel_gen_with<U, F>(threads: usize, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // Cap at the host's parallelism: oversubscribing physical cores only
    // adds spawn/switch overhead (an oversized FLASH_THREADS on a small
    // host used to *slow down* hconv_layer). Results are unaffected — the
    // chunk → index mapping depends only on the effective worker count,
    // and every count produces the sequential result bit-for-bit.
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = threads.max(1).min(len).min(host);
    if workers <= 1 || len < MIN_PARALLEL_LEN {
        return (0..len).map(f).collect();
    }

    // Contiguous chunks: worker w covers [w*base + min(w, extra) ..), the
    // first `extra` workers taking one extra item. Chunk results are
    // concatenated in worker order, so output order matches input order.
    let base = len / workers;
    let extra = len % workers;
    let mut out: Vec<U> = Vec::with_capacity(len);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut start = 0usize;
        for w in 0..workers {
            let chunk = base + usize::from(w < extra);
            let range = start..start + chunk;
            start += chunk;
            handles.push(scope.spawn(move || range.map(f).collect::<Vec<U>>()));
        }
        for h in handles {
            // A panic in a worker propagates here, matching the
            // sequential behaviour of panicking out of the map.
            out.extend(h.join().expect("parallel_gen worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_all_worker_counts() {
        let items: Vec<u64> = (0..97).map(|i| i * 31 + 7).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(*x) ^ 0xabcd).collect();
        for threads in [1, 2, 3, 4, 7, 16, 200] {
            let got = parallel_map_with(threads, &items, |x| x.wrapping_mul(*x) ^ 0xabcd);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map_with(8, &empty, |x| *x).is_empty());
        assert_eq!(parallel_map_with(8, &[5u32], |x| x + 1), vec![6]);
    }

    #[test]
    fn gen_preserves_index_mapping() {
        for threads in [1, 2, 5, 8] {
            let v = parallel_gen_with(threads, 33, |i| i * i);
            assert_eq!(v, (0..33).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn workers_never_exceed_host_parallelism() {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Request far more workers than the host has; the number of
        // distinct threads touching items must stay within the host's
        // parallelism (+1 for the sequential fallback on the caller).
        let ids = parallel_gen_with(4 * host + 13, 257, |_| std::thread::current().id());
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(
            distinct.len() <= host,
            "spawned {} distinct workers on a host with parallelism {}",
            distinct.len(),
            host
        );
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = parallel_gen_with(4, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
