//! Runtime SIMD capability detection and lane-width dispatch.
//!
//! The spectral kernels (dense FFT butterflies, Harvey NTT butterflies,
//! the sparse uop-tape interpreter) all offer a structure-of-arrays
//! batched mode that processes `W` polynomials per twiddle/uop. The lane
//! width `W` is a *runtime* decision: binaries are compiled for the
//! portable baseline, and the hot kernels are monomorphized per width and
//! selected here once per process from the detected target features.
//!
//! This module owns only the *decision*; the lane types and the kernels
//! themselves live next to their data (`flash_fft::simd` for the f64/C64
//! SoA kernels, `flash_ntt::transform` for the u64 butterflies) so the
//! dependency direction stays kernels → runtime.
//!
//! Overrides, in precedence order:
//!
//! 1. [`force_level`] — process-wide programmatic override, used by
//!    `bench_perf --no-simd` for A/B runs and by the equivalence tests to
//!    pin the scalar fallback.
//! 2. `FLASH_SIMD` environment variable: `off`/`scalar` force the scalar
//!    fallback, `portable` caps at 128-bit, `avx2` caps at 256-bit,
//!    `native`/unset use the full detected level. Read once, at first use.
//!
//! The *active* level is what the dispatchers consult; the *detected*
//! level is what the machine supports. Bench artifacts stamp both so
//! numbers from different hosts (or an `--no-simd` run) are comparable.

use std::sync::atomic::{AtomicU8, Ordering};

/// Widest lane count any level uses; SoA scratch sizing can use this as a
/// conservative upper bound.
pub const MAX_LANES: usize = 8;

/// A SIMD dispatch tier. Levels are ordered: each tier's kernels assume
/// no more than that tier's target features.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdLevel {
    /// True scalar fallback: lane width 1, batched entry points degrade
    /// to per-polynomial scalar execution.
    Scalar = 0,
    /// Portable 128-bit baseline (SSE2 on x86-64, NEON on aarch64): the
    /// compiler may vectorize 2-wide lane loops without extra features.
    Portable = 1,
    /// 256-bit AVX2 (+FMA) kernels, 4 lanes of `f64`/`u64`.
    Avx2 = 2,
    /// 512-bit AVX-512F kernels, 8 lanes of `f64`/`u64`.
    Avx512 = 3,
}

impl SimdLevel {
    /// Lane width `W` used by the SoA kernels at this level.
    #[inline]
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Portable => 2,
            SimdLevel::Avx2 => 4,
            SimdLevel::Avx512 => 8,
        }
    }

    /// The narrowest level whose lane width still covers a block of
    /// `used` polynomials. SoA cascades do the same per-slot work for
    /// every lane whether or not it carries a polynomial, so running the
    /// 8-lane kernel over a 2-poly tail wastes three quarters of its
    /// arithmetic; a narrower kernel is strictly cheaper. Every lane
    /// width is bit-identical, so narrowing only changes speed, never
    /// results. Never *widens*: a forced or detected level stays the
    /// ceiling (AVX-512 support implies AVX2 support on x86-64).
    #[inline]
    pub fn narrowed(self, used: usize) -> SimdLevel {
        match (self, used) {
            (SimdLevel::Avx512, 3..=4) => SimdLevel::Avx2,
            (SimdLevel::Avx512 | SimdLevel::Avx2, 0..=2) => SimdLevel::Portable,
            _ => self,
        }
    }

    /// Stable lowercase name, used in bench artifacts and `FLASH_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Portable => "portable",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            0 => SimdLevel::Scalar,
            1 => SimdLevel::Portable,
            2 => SimdLevel::Avx2,
            _ => SimdLevel::Avx512,
        }
    }
}

/// Sentinel for "not yet computed / no override" in the atomics below.
const UNSET: u8 = u8::MAX;

static DETECTED: AtomicU8 = AtomicU8::new(UNSET);
static FORCED: AtomicU8 = AtomicU8::new(UNSET);

/// What the running machine supports, independent of any override.
fn machine_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
        {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2;
        }
        SimdLevel::Portable
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Portable
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// Cap requested by `FLASH_SIMD`, if any.
fn env_cap() -> Option<SimdLevel> {
    let v = std::env::var("FLASH_SIMD").ok()?;
    match v.to_ascii_lowercase().as_str() {
        "off" | "0" | "scalar" | "none" => Some(SimdLevel::Scalar),
        "portable" | "baseline" | "128" => Some(SimdLevel::Portable),
        "avx2" | "256" => Some(SimdLevel::Avx2),
        "avx512" | "512" | "native" | "auto" | "" => None,
        other => {
            eprintln!("flash-runtime: ignoring unknown FLASH_SIMD value {other:?}");
            None
        }
    }
}

/// The level the machine supports, after applying the `FLASH_SIMD` cap
/// (but *not* [`force_level`]). Cached after the first call.
pub fn detected_level() -> SimdLevel {
    let cached = DETECTED.load(Ordering::Relaxed);
    if cached != UNSET {
        return SimdLevel::from_u8(cached);
    }
    let mut level = machine_level();
    if let Some(cap) = env_cap() {
        level = level.min(cap);
    }
    DETECTED.store(level as u8, Ordering::Relaxed);
    level
}

/// The level the dispatchers should use right now.
#[inline]
pub fn level() -> SimdLevel {
    let forced = FORCED.load(Ordering::Relaxed);
    if forced != UNSET {
        return SimdLevel::from_u8(forced);
    }
    detected_level()
}

/// Active SoA lane width `W` (1 when the scalar fallback is active).
#[inline]
pub fn lanes() -> usize {
    level().lanes()
}

/// Process-wide programmatic override, taking precedence over detection
/// and `FLASH_SIMD`. `None` removes the override. Levels above the
/// detected one are clamped — forcing `avx2` on a machine without AVX2
/// must never dispatch into AVX2 kernels.
pub fn force_level(level: Option<SimdLevel>) {
    match level {
        Some(l) => FORCED.store(l.min(detected_level()) as u8, Ordering::Relaxed),
        None => FORCED.store(UNSET, Ordering::Relaxed),
    }
}

/// Target features the *binary* was compiled with (relevant subset).
/// `-C target-cpu=native` builds show up here; runtime dispatch works on
/// top of whatever this reports.
pub fn compile_target_features() -> &'static str {
    if cfg!(all(target_arch = "x86_64", target_feature = "avx512f")) {
        "x86-64+avx512f"
    } else if cfg!(all(target_arch = "x86_64", target_feature = "avx2")) {
        "x86-64+avx2"
    } else if cfg!(target_arch = "x86_64") {
        "x86-64-baseline"
    } else if cfg!(target_arch = "aarch64") {
        "aarch64+neon"
    } else {
        "generic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_match_levels() {
        assert_eq!(SimdLevel::Scalar.lanes(), 1);
        assert_eq!(SimdLevel::Portable.lanes(), 2);
        assert_eq!(SimdLevel::Avx2.lanes(), 4);
        assert_eq!(SimdLevel::Avx512.lanes(), 8);
        assert!(SimdLevel::Avx512.lanes() <= MAX_LANES);
    }

    #[test]
    fn force_overrides_and_clamps() {
        let detected = detected_level();
        force_level(Some(SimdLevel::Scalar));
        assert_eq!(level(), SimdLevel::Scalar);
        assert_eq!(lanes(), 1);
        // Forcing above the detected level clamps to it.
        force_level(Some(SimdLevel::Avx512));
        assert!(level() <= detected);
        force_level(None);
        assert_eq!(level(), detected);
    }

    #[test]
    fn names_round_trip_through_env_spellings() {
        for l in [
            SimdLevel::Scalar,
            SimdLevel::Portable,
            SimdLevel::Avx2,
            SimdLevel::Avx512,
        ] {
            assert!(!l.name().is_empty());
        }
    }

    #[test]
    fn compile_features_nonempty() {
        assert!(!compile_target_features().is_empty());
    }
}
