//! Plan interning: share one `Arc<V>` per distinct key process-wide.
//!
//! Backed by `Mutex<BTreeMap>` so a `static Interner` can be constructed
//! in a `const` context (`BTreeMap::new` is const; `HashMap::new` is
//! not). Plans are built rarely and looked up often, and the values are
//! immutable once built, so a single mutex is not a contention concern —
//! but note the build closure runs *inside* the lock, which serialises
//! concurrent first-builds of the same plan (by design: each plan is
//! built exactly once) and of different plans (an accepted cost; plan
//! construction is milliseconds at the sizes this workspace uses).
//!
//! A cache may be **bounded** ([`Interner::bounded`]): once it holds
//! `cap` entries, inserting a new one evicts the least-recently-used
//! entry (every hit refreshes recency). Outstanding `Arc`s to an evicted
//! value stay valid — eviction only drops the cache's reference — so a
//! long-lived session keeps its plans alive while thousands of
//! one-request tenant configs can no longer grow memory without limit.
//! Eviction is an `O(len)` scan for the minimum recency stamp, which is
//! noise at the double-digit caps used here and keeps the const
//! constructor (no heap-ordered index needs allocating).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/eviction counters for one cache, readable at any time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned an already-interned plan.
    pub hits: u64,
    /// Lookups that had to build the plan.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound (0 when unbounded).
    pub evictions: u64,
    /// Entries currently held.
    pub entries: u64,
}

impl CacheStats {
    /// Entries built = misses (each miss builds exactly once).
    pub fn builds(&self) -> u64 {
        self.misses
    }
}

/// One cached value plus the recency stamp the LRU bound keys on.
struct Slot<V> {
    value: Arc<V>,
    last_used: u64,
}

/// A process-wide cache of immutable plan objects keyed by `K`.
///
/// Typical use is a `static`:
///
/// ```
/// use flash_runtime::Interner;
/// use std::sync::Arc;
///
/// static CACHE: Interner<usize, Vec<u64>> = Interner::new();
///
/// let a: Arc<Vec<u64>> = CACHE.intern_with(8, |n| (0..*n as u64).collect());
/// let b = CACHE.intern_with(8, |_| unreachable!("already interned"));
/// assert!(Arc::ptr_eq(&a, &b));
/// ```
pub struct Interner<K, V> {
    map: Mutex<BTreeMap<K, Slot<V>>>,
    /// LRU capacity; 0 means unbounded.
    cap: usize,
    /// Monotonic recency clock, bumped on every hit and insert.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Ord + Clone, V> Interner<K, V> {
    /// Const constructor for an unbounded cache, usable in `static` items.
    pub const fn new() -> Self {
        Self::bounded(0)
    }

    /// Const constructor for a cache holding at most `cap` entries
    /// (least-recently-used eviction; `cap == 0` means unbounded).
    pub const fn bounded(cap: usize) -> Self {
        Interner {
            map: Mutex::new(BTreeMap::new()),
            cap,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Drops least-recently-used entries until the bound holds. Caller
    /// holds the map lock.
    fn enforce_cap(&self, map: &mut BTreeMap<K, Slot<V>>) {
        if self.cap == 0 {
            return;
        }
        while map.len() > self.cap {
            let Some(oldest) = map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Return the interned value for `key`, building it with `build` on
    /// first use. Every later call with an equal key returns a clone of
    /// the same `Arc` (pointer-equal) without invoking `build` — unless
    /// the entry was evicted by the capacity bound in between, in which
    /// case it is rebuilt.
    pub fn intern_with(&self, key: K, build: impl FnOnce(&K) -> V) -> Arc<V> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let tick = self.next_tick();
        if let Some(slot) = map.get_mut(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            slot.last_used = tick;
            return Arc::clone(&slot.value);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(build(&key));
        map.insert(
            key,
            Slot {
                value: Arc::clone(&value),
                last_used: tick,
            },
        );
        self.enforce_cap(&mut map);
        value
    }

    /// Fallible variant: `build` errors are returned without caching, so
    /// a failed construction can be retried (or reported) by the caller.
    pub fn try_intern_with<E>(
        &self,
        key: K,
        build: impl FnOnce(&K) -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let tick = self.next_tick();
        if let Some(slot) = map.get_mut(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            slot.last_used = tick;
            return Ok(Arc::clone(&slot.value));
        }
        let value = Arc::new(build(&key)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        map.insert(
            key,
            Slot {
                value: Arc::clone(&value),
                last_used: tick,
            },
        );
        self.enforce_cap(&mut map);
        Ok(value)
    }

    /// Look up without building (a hit still refreshes LRU recency).
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let tick = self.next_tick();
        match map.get_mut(key) {
            Some(slot) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                slot.last_used = tick;
                Some(Arc::clone(&slot.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Folds an accumulator over every interned value (for aggregate
    /// cache metrics such as total bytes held). The map lock is held for
    /// the duration, so `f` must be cheap.
    pub fn fold_values<A>(&self, init: A, mut f: impl FnMut(A, &V) -> A) -> A {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.values().fold(init, |acc, s| f(acc, &s.value))
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all interned entries (outstanding `Arc`s stay valid) and
    /// reset the counters. For tests and memory-pressure escapes.
    pub fn clear(&self) {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the hit/miss/eviction counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

impl<K: Ord + Clone, V> Default for Interner<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_once_per_key() {
        let cache: Interner<u32, String> = Interner::new();
        let mut builds = 0;
        let a = cache.intern_with(1, |k| {
            builds += 1;
            format!("plan-{k}")
        });
        let b = cache.intern_with(1, |k| {
            builds += 1;
            format!("plan-{k}")
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds, 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                entries: 1
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_distinct_plans() {
        let cache: Interner<(usize, u64), u64> = Interner::new();
        let a = cache.intern_with((8, 97), |&(n, q)| n as u64 * q);
        let b = cache.intern_with((8, 193), |&(n, q)| n as u64 * q);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn try_intern_does_not_cache_errors() {
        let cache: Interner<u8, u8> = Interner::new();
        let err: Result<_, &str> = cache.try_intern_with(1, |_| Err("nope"));
        assert!(err.is_err());
        assert_eq!(cache.len(), 0);
        let ok: Result<_, &str> = cache.try_intern_with(1, |_| Ok(7));
        assert_eq!(*ok.unwrap(), 7);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let cache: Interner<u8, u8> = Interner::new();
        let kept = cache.intern_with(1, |_| 9);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 0,
                evictions: 0,
                entries: 0
            }
        );
        assert_eq!(*kept, 9); // outstanding Arc unaffected
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache: Interner<u8, u8> = Interner::bounded(2);
        assert_eq!(cache.capacity(), 2);
        let kept = cache.intern_with(1, |_| 10);
        cache.intern_with(2, |_| 20);
        // Touch key 1 so key 2 becomes the LRU entry.
        assert!(cache.get(&1).is_some());
        cache.intern_with(3, |_| 30);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&1).is_some(), "recently used entry survives");
        assert!(cache.get(&2).is_none(), "LRU entry was evicted");
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(*kept, 10, "outstanding Arc survives eviction");
    }

    #[test]
    fn evicted_entries_rebuild_on_next_intern() {
        let cache: Interner<u8, u8> = Interner::bounded(1);
        cache.intern_with(1, |_| 1);
        cache.intern_with(2, |_| 2); // evicts 1
        let mut rebuilt = false;
        cache.intern_with(1, |_| {
            rebuilt = true;
            1
        });
        assert!(rebuilt, "evicted key must rebuild");
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache: Interner<u32, u32> = Interner::new();
        for k in 0..512 {
            cache.intern_with(k, |&k| k);
        }
        assert_eq!(cache.len(), 512);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn concurrent_intern_builds_once() {
        static CACHE: Interner<u32, u64> = Interner::new();
        static BUILDS: AtomicU64 = AtomicU64::new(0);
        let arcs: Vec<Arc<u64>> = crate::parallel_gen_with(8, 32, |_| {
            CACHE.intern_with(42, |_| {
                BUILDS.fetch_add(1, Ordering::SeqCst);
                1234
            })
        });
        assert_eq!(BUILDS.load(Ordering::SeqCst), 1);
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
    }
}
