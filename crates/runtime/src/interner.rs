//! Plan interning: share one `Arc<V>` per distinct key process-wide.
//!
//! Backed by `Mutex<BTreeMap>` so a `static Interner` can be constructed
//! in a `const` context (`BTreeMap::new` is const; `HashMap::new` is
//! not). Plans are built rarely and looked up often, and the values are
//! immutable once built, so a single mutex is not a contention concern —
//! but note the build closure runs *inside* the lock, which serialises
//! concurrent first-builds of the same plan (by design: each plan is
//! built exactly once) and of different plans (an accepted cost; plan
//! construction is milliseconds at the sizes this workspace uses).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss counters for one cache, readable at any time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned an already-interned plan.
    pub hits: u64,
    /// Lookups that had to build the plan.
    pub misses: u64,
}

impl CacheStats {
    /// Entries built = misses (each miss builds exactly once).
    pub fn builds(&self) -> u64 {
        self.misses
    }
}

/// A process-wide cache of immutable plan objects keyed by `K`.
///
/// Typical use is a `static`:
///
/// ```
/// use flash_runtime::Interner;
/// use std::sync::Arc;
///
/// static CACHE: Interner<usize, Vec<u64>> = Interner::new();
///
/// let a: Arc<Vec<u64>> = CACHE.intern_with(8, |n| (0..*n as u64).collect());
/// let b = CACHE.intern_with(8, |_| unreachable!("already interned"));
/// assert!(Arc::ptr_eq(&a, &b));
/// ```
pub struct Interner<K, V> {
    map: Mutex<BTreeMap<K, Arc<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Ord + Clone, V> Interner<K, V> {
    /// Const constructor, usable in `static` items.
    pub const fn new() -> Self {
        Interner {
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Return the interned value for `key`, building it with `build` on
    /// first use. Every later call with an equal key returns a clone of
    /// the same `Arc` (pointer-equal) without invoking `build`.
    pub fn intern_with(&self, key: K, build: impl FnOnce(&K) -> V) -> Arc<V> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(build(&key));
        map.insert(key, Arc::clone(&v));
        v
    }

    /// Fallible variant: `build` errors are returned without caching, so
    /// a failed construction can be retried (or reported) by the caller.
    pub fn try_intern_with<E>(
        &self,
        key: K,
        build: impl FnOnce(&K) -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(v));
        }
        let v = Arc::new(build(&key)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Arc::clone(&v));
        Ok(v)
    }

    /// Look up without building.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let found = map.get(key).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Folds an accumulator over every interned value (for aggregate
    /// cache metrics such as total bytes held). The map lock is held for
    /// the duration, so `f` must be cheap.
    pub fn fold_values<A>(&self, init: A, mut f: impl FnMut(A, &V) -> A) -> A {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.values().fold(init, |acc, v| f(acc, v))
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all interned entries (outstanding `Arc`s stay valid) and
    /// reset the counters. For tests and memory-pressure escapes.
    pub fn clear(&self) {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<K: Ord + Clone, V> Default for Interner<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_once_per_key() {
        let cache: Interner<u32, String> = Interner::new();
        let mut builds = 0;
        let a = cache.intern_with(1, |k| {
            builds += 1;
            format!("plan-{k}")
        });
        let b = cache.intern_with(1, |k| {
            builds += 1;
            format!("plan-{k}")
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds, 1);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_distinct_plans() {
        let cache: Interner<(usize, u64), u64> = Interner::new();
        let a = cache.intern_with((8, 97), |&(n, q)| n as u64 * q);
        let b = cache.intern_with((8, 193), |&(n, q)| n as u64 * q);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn try_intern_does_not_cache_errors() {
        let cache: Interner<u8, u8> = Interner::new();
        let err: Result<_, &str> = cache.try_intern_with(1, |_| Err("nope"));
        assert!(err.is_err());
        assert_eq!(cache.len(), 0);
        let ok: Result<_, &str> = cache.try_intern_with(1, |_| Ok(7));
        assert_eq!(*ok.unwrap(), 7);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let cache: Interner<u8, u8> = Interner::new();
        let kept = cache.intern_with(1, |_| 9);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 0 });
        assert_eq!(*kept, 9); // outstanding Arc unaffected
    }

    #[test]
    fn concurrent_intern_builds_once() {
        static CACHE: Interner<u32, u64> = Interner::new();
        static BUILDS: AtomicU64 = AtomicU64::new(0);
        let arcs: Vec<Arc<u64>> = crate::parallel_gen_with(8, 32, |_| {
            CACHE.intern_with(42, |_| {
                BUILDS.fetch_add(1, Ordering::SeqCst);
                1234
            })
        });
        assert_eq!(BUILDS.load(Ordering::SeqCst), 1);
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
    }
}
