//! Thread-local scratch-buffer pools for allocation-free hot paths.
//!
//! The transform hot loops (NTT/FFT forward/inverse, point-wise products,
//! sparse execution) need short-lived working buffers of a handful of
//! distinct sizes. Allocating them per call dominates once the arithmetic
//! itself is cheap — the FLASH premise. A [`ScratchPool`] hands out
//! recycled buffers from a thread-local, size-classed free list behind an
//! RAII [`Scratch`] guard: dropping the guard returns the buffer to the
//! pool, so steady state performs zero allocator calls.
//!
//! Buffers are [`AlignedBuf`]s, allocated at [`SCRATCH_ALIGN`] (64-byte)
//! boundaries: the SoA SIMD kernels load whole cache lines of lanes, and a
//! pool that handed back 8-byte-aligned `Vec`s would make every batched
//! load straddle lines. The guard dereferences to `[T]`, so call sites
//! read exactly like slices.
//!
//! Concrete pools live next to the element types they serve ([`U64_SCRATCH`],
//! [`F64_SCRATCH`], [`I128_SCRATCH`] here; a `C64` pool in `flash-fft`),
//! mirroring how plan caches live next to the plans they cache (see
//! [`crate::Interner`]). New pools are declared with [`scratch_pool!`].
//!
//! # Ownership rules
//!
//! * Check out scratch for *transient* working storage whose lifetime ends
//!   inside the call. When a buffer becomes the function's return value,
//!   either allocate it normally or use [`Scratch::detach`] (which forfeits
//!   recycling for that one buffer).
//! * Guards nest freely; each checkout draws a distinct buffer, so a
//!   function may hold several at once and callees may check out more.
//! * Buffers are size-classed by the next power of two of the requested
//!   length; at most [`MAX_BUFFERS_PER_CLASS`] are retained per class per
//!   thread, so mixed sizes cannot grow the pool without bound.
//!
//! Hit/miss/bytes-recycled counters are process-wide atomics in the same
//! style as [`crate::CacheStats`], so benchmarks can prove the recycling
//! actually happens.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::LocalKey;

/// Retention cap: free buffers kept per size class per thread.
pub const MAX_BUFFERS_PER_CLASS: usize = 8;

/// Guaranteed minimum alignment (bytes) of every pooled buffer: one full
/// cache line, so 512-bit SoA lane loads are always aligned.
pub const SCRATCH_ALIGN: usize = 64;

/// Hit/miss/recycling counters for one pool, readable at any time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from a recycled buffer (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Total capacity bytes handed out from recycled buffers.
    pub bytes_recycled: u64,
}

impl PoolStats {
    /// Fraction of checkouts served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A heap buffer of `Copy` elements whose storage is aligned to at least
/// [`SCRATCH_ALIGN`] bytes. API is the `Vec` subset the scratch paths
/// need (`len`/`capacity`/`clear`/`resize`/`extend_from_slice`) plus
/// `Deref`/`DerefMut` to `[T]`.
///
/// `Vec` cannot provide this: its deallocation contract is tied to
/// `Layout::array::<T>()`, so an over-aligned allocation smuggled into a
/// `Vec` would be undefined behavior on drop. Restricting `T: Copy` keeps
/// drop handling trivial (no element destructors to run on truncate).
pub struct AlignedBuf<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
}

// The buffer is an owning pointer to plain `Copy` data; it is exactly as
// thread-safe as the element type.
unsafe impl<T: Copy + Send> Send for AlignedBuf<T> {}
unsafe impl<T: Copy + Sync> Sync for AlignedBuf<T> {}

impl<T: Copy> AlignedBuf<T> {
    /// An empty buffer; does not allocate.
    pub const fn new() -> Self {
        AlignedBuf {
            ptr: NonNull::dangling(),
            len: 0,
            cap: 0,
        }
    }

    fn layout(cap: usize) -> Layout {
        let align = SCRATCH_ALIGN.max(std::mem::align_of::<T>());
        let bytes = cap
            .checked_mul(std::mem::size_of::<T>())
            .expect("scratch buffer size overflows usize");
        Layout::from_size_align(bytes, align).expect("valid scratch layout")
    }

    /// An empty buffer with `cap` elements of aligned storage.
    pub fn with_capacity(cap: usize) -> Self {
        if cap == 0 || std::mem::size_of::<T>() == 0 {
            let mut buf = Self::new();
            buf.cap = cap;
            return buf;
        }
        let layout = Self::layout(cap);
        let raw = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout)
        };
        AlignedBuf { ptr, len: 0, cap }
    }

    /// Number of initialized elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are initialized.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated element capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Drops all elements (trivially — `T: Copy`), keeping the storage.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Grows storage to at least `min_cap` elements, preserving contents.
    /// Allocation is fresh + copy (not `realloc`): over-aligned layouts
    /// may not be preserved by in-place reallocation.
    fn reserve_total(&mut self, min_cap: usize) {
        if min_cap <= self.cap || std::mem::size_of::<T>() == 0 {
            return;
        }
        let new_cap = min_cap.next_power_of_two();
        let mut fresh = Self::with_capacity(new_cap);
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), fresh.ptr.as_ptr(), self.len);
        }
        fresh.len = self.len;
        *self = fresh;
    }

    /// Resizes to `len` elements, filling any growth with `val`.
    pub fn resize(&mut self, len: usize, val: T) {
        if len > self.len {
            self.reserve_total(len);
            for i in self.len..len {
                unsafe { self.ptr.as_ptr().add(i).write(val) };
            }
        }
        self.len = len;
    }

    /// Appends a copy of `src`.
    pub fn extend_from_slice(&mut self, src: &[T]) {
        self.reserve_total(self.len + src.len());
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.as_ptr().add(self.len), src.len());
        }
        self.len += src.len();
    }
}

impl<T: Copy> Default for AlignedBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Deref for AlignedBuf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> DerefMut for AlignedBuf<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.cap != 0 && std::mem::size_of::<T>() != 0 {
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.cap)) };
        }
    }
}

/// The thread-local free lists of one pool: size class (a power of two
/// capacity) → stack of cleared buffers with at least that capacity.
///
/// Only [`scratch_pool!`] and the pool statics below should need to name
/// this type; user code interacts with [`ScratchPool`] and [`Scratch`].
pub struct PoolShelves<T: Copy> {
    classes: BTreeMap<usize, Vec<AlignedBuf<T>>>,
}

impl<T: Copy> PoolShelves<T> {
    /// Const constructor, usable in `thread_local!` initializers.
    pub const fn new() -> Self {
        PoolShelves {
            classes: BTreeMap::new(),
        }
    }
}

impl<T: Copy> Default for PoolShelves<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A process-wide scratch pool for element type `T`, backed by
/// thread-local free lists (no synchronization on the checkout path; the
/// stats counters are the only shared state).
///
/// Construct as a `static`, normally via [`scratch_pool!`]:
///
/// ```
/// flash_runtime::scratch_pool! {
///     /// Example pool.
///     static DEMO_SCRATCH: u32
/// }
///
/// let first = DEMO_SCRATCH.take(100);
/// assert_eq!(first.len(), 100);
/// drop(first); // buffer returns to the pool
/// let again = DEMO_SCRATCH.take(80); // same size class: recycled
/// assert!(DEMO_SCRATCH.stats().hits >= 1);
/// ```
pub struct ScratchPool<T: Copy + 'static> {
    shelves: &'static LocalKey<RefCell<PoolShelves<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_recycled: AtomicU64,
}

impl<T: Copy + 'static> ScratchPool<T> {
    /// Const constructor over the pool's thread-local shelves; see
    /// [`scratch_pool!`] for the one-line declaration form.
    pub const fn new(shelves: &'static LocalKey<RefCell<PoolShelves<T>>>) -> Self {
        ScratchPool {
            shelves,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_recycled: AtomicU64::new(0),
        }
    }

    /// Size class of a requested length: next power of two (min 1).
    #[inline]
    fn class_of(len: usize) -> usize {
        len.next_power_of_two().max(1)
    }

    /// Pops a cleared buffer of the right class, or allocates one.
    fn checkout(&'static self, len: usize) -> AlignedBuf<T> {
        let class = Self::class_of(len);
        let reused = self
            .shelves
            .try_with(|s| {
                s.borrow_mut()
                    .classes
                    .get_mut(&class)
                    .and_then(|shelf| shelf.pop())
            })
            .ok()
            .flatten();
        match reused {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_recycled.fetch_add(
                    (buf.capacity() * std::mem::size_of::<T>()) as u64,
                    Ordering::Relaxed,
                );
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                AlignedBuf::with_capacity(class)
            }
        }
    }

    /// Returns a buffer to its size-class shelf (or drops it if the shelf
    /// is full or the thread is tearing down).
    fn recycle(&self, mut buf: AlignedBuf<T>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        // File under the largest power of two ≤ capacity, so every buffer
        // on shelf `c` has capacity ≥ `c` and can serve a `take(len)` with
        // class `c` without reallocating.
        let class = if cap.is_power_of_two() {
            cap
        } else {
            cap.next_power_of_two() / 2
        };
        buf.clear();
        let _ = self.shelves.try_with(|s| {
            let mut s = s.borrow_mut();
            let shelf = s.classes.entry(class).or_default();
            if shelf.len() < MAX_BUFFERS_PER_CLASS {
                shelf.push(buf);
            }
        });
    }

    /// Checks out a buffer of exactly `len` default-initialized elements.
    pub fn take(&'static self, len: usize) -> Scratch<T>
    where
        T: Default,
    {
        let mut buf = self.checkout(len);
        buf.resize(len, T::default());
        Scratch {
            buf: Some(buf),
            pool: self,
        }
    }

    /// Checks out a buffer initialized to a copy of `src`.
    pub fn take_copied(&'static self, src: &[T]) -> Scratch<T> {
        let mut buf = self.checkout(src.len());
        buf.extend_from_slice(src);
        Scratch {
            buf: Some(buf),
            pool: self,
        }
    }

    /// Snapshot of the hit/miss/recycling counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_recycled: self.bytes_recycled.load(Ordering::Relaxed),
        }
    }

    /// Resets the counters (the retained buffers stay). For tests and
    /// benchmark sections that want a clean measurement window.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes_recycled.store(0, Ordering::Relaxed);
    }
}

/// RAII checkout of one scratch buffer; dereferences (through
/// [`AlignedBuf`]) to `[T]` and returns the buffer to its pool on drop.
pub struct Scratch<T: Copy + 'static> {
    /// `Some` until dropped or [`Scratch::detach`]ed.
    buf: Option<AlignedBuf<T>>,
    pool: &'static ScratchPool<T>,
}

impl<T: Copy + 'static> Scratch<T> {
    /// Takes permanent ownership of the buffer, skipping recycling. Use
    /// only when the buffer escapes as a return value.
    pub fn detach(mut self) -> AlignedBuf<T> {
        self.buf.take().expect("buffer present until detach/drop")
    }
}

impl<T: Copy + 'static> Deref for Scratch<T> {
    type Target = AlignedBuf<T>;
    #[inline]
    fn deref(&self) -> &AlignedBuf<T> {
        self.buf.as_ref().expect("buffer present until detach/drop")
    }
}

impl<T: Copy + 'static> DerefMut for Scratch<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut AlignedBuf<T> {
        self.buf.as_mut().expect("buffer present until detach/drop")
    }
}

impl<T: Copy + 'static> Drop for Scratch<T> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.recycle(buf);
        }
    }
}

/// Declares a `static` [`ScratchPool`] together with its thread-local
/// shelves:
///
/// ```
/// flash_runtime::scratch_pool! {
///     /// Scratch for complex staging buffers.
///     pub static MY_SCRATCH: f32
/// }
/// let buf = MY_SCRATCH.take(16);
/// assert_eq!(buf.len(), 16);
/// ```
#[macro_export]
macro_rules! scratch_pool {
    ($(#[$meta:meta])* $vis:vis static $name:ident : $ty:ty) => {
        $(#[$meta])*
        $vis static $name: $crate::ScratchPool<$ty> = {
            ::std::thread_local! {
                static SHELVES: ::std::cell::RefCell<$crate::PoolShelves<$ty>> =
                    const { ::std::cell::RefCell::new($crate::PoolShelves::new()) };
            }
            $crate::ScratchPool::new(&SHELVES)
        };
    };
}

scratch_pool! {
    /// Process-wide `u64` scratch (NTT residue vectors, coefficient
    /// accumulators).
    pub static U64_SCRATCH: u64
}

scratch_pool! {
    /// Process-wide `f64` scratch (center-lifted operands, FFT products,
    /// SoA lane-interleaved batches).
    pub static F64_SCRATCH: f64
}

scratch_pool! {
    /// Process-wide `i128` scratch (fixed-point datapath registers).
    pub static I128_SCRATCH: i128
}

#[cfg(test)]
mod tests {
    use super::*;

    scratch_pool! {
        static TEST_SCRATCH: u64
    }

    #[test]
    fn take_is_sized_and_zeroed() {
        let buf = TEST_SCRATCH.take(10);
        assert_eq!(buf.len(), 10);
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn recycles_within_a_size_class() {
        scratch_pool! {
            static LOCAL: u64
        }
        let before = LOCAL.stats();
        {
            let mut a = LOCAL.take(100);
            a[0] = 7;
        } // returned to the 128-class shelf
        let b = LOCAL.take(90); // same class: must be recycled
        assert_eq!(b.len(), 90);
        assert!(b.iter().all(|&x| x == 0), "recycled buffer must be cleared");
        let after = LOCAL.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses + 1);
        assert!(after.bytes_recycled >= before.bytes_recycled + 128 * 8);
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        let mut a = TEST_SCRATCH.take(16);
        let mut b = TEST_SCRATCH.take(16);
        a[0] = 1;
        b[0] = 2;
        assert_eq!(a[0], 1);
        assert_eq!(b[0], 2);
    }

    #[test]
    fn take_copied_matches_source() {
        let src: Vec<u64> = (0..33).map(|i| i * i).collect();
        let buf = TEST_SCRATCH.take_copied(&src);
        assert_eq!(&buf[..], &src[..]);
    }

    #[test]
    fn detach_escapes_without_recycling() {
        scratch_pool! {
            static DETACH_POOL: u64
        }
        let owned: AlignedBuf<u64> = DETACH_POOL.take(64).detach();
        assert_eq!(owned.len(), 64);
        let s = DETACH_POOL.stats();
        // a fresh take after detach cannot hit (nothing was returned)
        let _again = DETACH_POOL.take(64);
        assert_eq!(DETACH_POOL.stats().hits, s.hits);
    }

    #[test]
    fn shelf_retention_is_capped() {
        scratch_pool! {
            static CAP_POOL: u64
        }
        let guards: Vec<_> = (0..MAX_BUFFERS_PER_CLASS + 4)
            .map(|_| CAP_POOL.take(32))
            .collect();
        drop(guards);
        // Only MAX_BUFFERS_PER_CLASS buffers were retained, so checking
        // out one more than the cap must include at least one miss.
        CAP_POOL.reset_stats();
        let guards: Vec<_> = (0..MAX_BUFFERS_PER_CLASS + 1)
            .map(|_| CAP_POOL.take(32))
            .collect();
        let s = CAP_POOL.stats();
        assert_eq!(s.hits, MAX_BUFFERS_PER_CLASS as u64);
        assert_eq!(s.misses, 1);
        drop(guards);
    }

    #[test]
    fn pools_are_thread_local_but_counters_global() {
        scratch_pool! {
            static THREADED: u64
        }
        // Warm this thread's shelf, then verify another thread misses
        // (its shelf starts empty) while the shared counters see both.
        drop(THREADED.take(16));
        THREADED.reset_stats();
        drop(THREADED.take(16)); // hit on this thread
        std::thread::scope(|s| {
            s.spawn(|| drop(THREADED.take(16))).join().unwrap();
        });
        let stats = THREADED.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn hit_rate_bounds() {
        let s = PoolStats {
            hits: 3,
            misses: 1,
            bytes_recycled: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let none = PoolStats {
            hits: 0,
            misses: 0,
            bytes_recycled: 0,
        };
        assert_eq!(none.hit_rate(), 0.0);
    }

    #[test]
    fn buffers_are_cache_line_aligned_across_classes_and_reuse() {
        scratch_pool! {
            static ALIGN_U64: u64
        }
        scratch_pool! {
            static ALIGN_F64: f64
        }
        fn addr_of<T: Copy>(s: &[T]) -> usize {
            s.as_ptr() as usize
        }
        // Fresh allocations, across many size classes (including lengths
        // that are not powers of two).
        for len in [1usize, 3, 7, 8, 31, 64, 100, 1000, 4096, 5000] {
            let u = ALIGN_U64.take(len);
            assert_eq!(addr_of(&u) % SCRATCH_ALIGN, 0, "u64 take({len})");
            let f = ALIGN_F64.take(len);
            assert_eq!(addr_of(&f) % SCRATCH_ALIGN, 0, "f64 take({len})");
            let c = ALIGN_F64.take_copied(&vec![1.5; len]);
            assert_eq!(addr_of(&c) % SCRATCH_ALIGN, 0, "f64 take_copied({len})");
        }
        // Recycled buffers keep the alignment guarantee.
        ALIGN_U64.reset_stats();
        for _ in 0..4 {
            let u = ALIGN_U64.take(100);
            assert_eq!(addr_of(&u) % SCRATCH_ALIGN, 0);
        }
        assert!(ALIGN_U64.stats().hits >= 3, "reuse must actually happen");
        // Detached buffers are aligned too.
        let owned = ALIGN_U64.take(77).detach();
        assert_eq!(owned.as_ptr() as usize % SCRATCH_ALIGN, 0);
    }

    #[test]
    fn aligned_buf_grows_preserving_contents() {
        let mut buf = AlignedBuf::<u64>::with_capacity(4);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        buf.extend_from_slice(&[5, 6, 7, 8, 9]); // forces regrowth
        assert_eq!(&buf[..], &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(buf.as_ptr() as usize % SCRATCH_ALIGN, 0);
        buf.resize(3, 0);
        assert_eq!(&buf[..], &[1, 2, 3]);
        buf.resize(6, 42);
        assert_eq!(&buf[..], &[1, 2, 3, 42, 42, 42]);
    }
}
