//! Thread-local scratch-buffer pools for allocation-free hot paths.
//!
//! The transform hot loops (NTT/FFT forward/inverse, point-wise products,
//! sparse execution) need short-lived working buffers of a handful of
//! distinct sizes. Allocating them per call dominates once the arithmetic
//! itself is cheap — the FLASH premise. A [`ScratchPool`] hands out
//! recycled `Vec`s from a thread-local, size-classed free list behind an
//! RAII [`Scratch`] guard: dropping the guard returns the buffer to the
//! pool, so steady state performs zero allocator calls.
//!
//! Concrete pools live next to the element types they serve ([`U64_SCRATCH`],
//! [`F64_SCRATCH`], [`I128_SCRATCH`] here; a `C64` pool in `flash-fft`),
//! mirroring how plan caches live next to the plans they cache (see
//! [`crate::Interner`]). New pools are declared with [`scratch_pool!`].
//!
//! # Ownership rules
//!
//! * Check out scratch for *transient* working storage whose lifetime ends
//!   inside the call. When a buffer becomes the function's return value,
//!   either allocate it normally or use [`Scratch::detach`] (which forfeits
//!   recycling for that one buffer).
//! * Guards nest freely; each checkout draws a distinct buffer, so a
//!   function may hold several at once and callees may check out more.
//! * Buffers are size-classed by the next power of two of the requested
//!   length; at most [`MAX_BUFFERS_PER_CLASS`] are retained per class per
//!   thread, so mixed sizes cannot grow the pool without bound.
//!
//! Hit/miss/bytes-recycled counters are process-wide atomics in the same
//! style as [`crate::CacheStats`], so benchmarks can prove the recycling
//! actually happens.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::LocalKey;

/// Retention cap: free buffers kept per size class per thread.
pub const MAX_BUFFERS_PER_CLASS: usize = 8;

/// Hit/miss/recycling counters for one pool, readable at any time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from a recycled buffer (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer.
    pub misses: u64,
    /// Total capacity bytes handed out from recycled buffers.
    pub bytes_recycled: u64,
}

impl PoolStats {
    /// Fraction of checkouts served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The thread-local free lists of one pool: size class (a power of two
/// capacity) → stack of cleared buffers with at least that capacity.
///
/// Only [`scratch_pool!`] and the pool statics below should need to name
/// this type; user code interacts with [`ScratchPool`] and [`Scratch`].
pub struct PoolShelves<T> {
    classes: BTreeMap<usize, Vec<Vec<T>>>,
}

impl<T> PoolShelves<T> {
    /// Const constructor, usable in `thread_local!` initializers.
    pub const fn new() -> Self {
        PoolShelves {
            classes: BTreeMap::new(),
        }
    }
}

impl<T> Default for PoolShelves<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A process-wide scratch pool for element type `T`, backed by
/// thread-local free lists (no synchronization on the checkout path; the
/// stats counters are the only shared state).
///
/// Construct as a `static`, normally via [`scratch_pool!`]:
///
/// ```
/// flash_runtime::scratch_pool! {
///     /// Example pool.
///     static DEMO_SCRATCH: u32
/// }
///
/// let first = DEMO_SCRATCH.take(100);
/// assert_eq!(first.len(), 100);
/// drop(first); // buffer returns to the pool
/// let again = DEMO_SCRATCH.take(80); // same size class: recycled
/// assert!(DEMO_SCRATCH.stats().hits >= 1);
/// ```
pub struct ScratchPool<T: 'static> {
    shelves: &'static LocalKey<RefCell<PoolShelves<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_recycled: AtomicU64,
}

impl<T: 'static> ScratchPool<T> {
    /// Const constructor over the pool's thread-local shelves; see
    /// [`scratch_pool!`] for the one-line declaration form.
    pub const fn new(shelves: &'static LocalKey<RefCell<PoolShelves<T>>>) -> Self {
        ScratchPool {
            shelves,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_recycled: AtomicU64::new(0),
        }
    }

    /// Size class of a requested length: next power of two (min 1).
    #[inline]
    fn class_of(len: usize) -> usize {
        len.next_power_of_two().max(1)
    }

    /// Pops a cleared buffer of the right class, or allocates one.
    fn checkout(&'static self, len: usize) -> Vec<T> {
        let class = Self::class_of(len);
        let reused = self
            .shelves
            .try_with(|s| {
                s.borrow_mut()
                    .classes
                    .get_mut(&class)
                    .and_then(|shelf| shelf.pop())
            })
            .ok()
            .flatten();
        match reused {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_recycled.fetch_add(
                    (buf.capacity() * std::mem::size_of::<T>()) as u64,
                    Ordering::Relaxed,
                );
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(class)
            }
        }
    }

    /// Returns a buffer to its size-class shelf (or drops it if the shelf
    /// is full or the thread is tearing down).
    fn recycle(&self, mut buf: Vec<T>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        // File under the largest power of two ≤ capacity, so every buffer
        // on shelf `c` has capacity ≥ `c` and can serve a `take(len)` with
        // class `c` without reallocating.
        let class = if cap.is_power_of_two() {
            cap
        } else {
            cap.next_power_of_two() / 2
        };
        buf.clear();
        let _ = self.shelves.try_with(|s| {
            let mut s = s.borrow_mut();
            let shelf = s.classes.entry(class).or_default();
            if shelf.len() < MAX_BUFFERS_PER_CLASS {
                shelf.push(buf);
            }
        });
    }

    /// Checks out a buffer of exactly `len` default-initialized elements.
    pub fn take(&'static self, len: usize) -> Scratch<T>
    where
        T: Copy + Default,
    {
        let mut buf = self.checkout(len);
        buf.resize(len, T::default());
        Scratch {
            buf: Some(buf),
            pool: self,
        }
    }

    /// Checks out a buffer initialized to a copy of `src`.
    pub fn take_copied(&'static self, src: &[T]) -> Scratch<T>
    where
        T: Copy,
    {
        let mut buf = self.checkout(src.len());
        buf.extend_from_slice(src);
        Scratch {
            buf: Some(buf),
            pool: self,
        }
    }

    /// Snapshot of the hit/miss/recycling counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_recycled: self.bytes_recycled.load(Ordering::Relaxed),
        }
    }

    /// Resets the counters (the retained buffers stay). For tests and
    /// benchmark sections that want a clean measurement window.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.bytes_recycled.store(0, Ordering::Relaxed);
    }
}

/// RAII checkout of one scratch buffer; dereferences to the underlying
/// `Vec<T>` and returns the buffer to its pool on drop.
pub struct Scratch<T: 'static> {
    /// `Some` until dropped or [`Scratch::detach`]ed.
    buf: Option<Vec<T>>,
    pool: &'static ScratchPool<T>,
}

impl<T: 'static> Scratch<T> {
    /// Takes permanent ownership of the buffer, skipping recycling. Use
    /// only when the buffer escapes as a return value.
    pub fn detach(mut self) -> Vec<T> {
        self.buf.take().expect("buffer present until detach/drop")
    }
}

impl<T: 'static> Deref for Scratch<T> {
    type Target = Vec<T>;
    #[inline]
    fn deref(&self) -> &Vec<T> {
        self.buf.as_ref().expect("buffer present until detach/drop")
    }
}

impl<T: 'static> DerefMut for Scratch<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<T> {
        self.buf.as_mut().expect("buffer present until detach/drop")
    }
}

impl<T: 'static> Drop for Scratch<T> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.recycle(buf);
        }
    }
}

/// Declares a `static` [`ScratchPool`] together with its thread-local
/// shelves:
///
/// ```
/// flash_runtime::scratch_pool! {
///     /// Scratch for complex staging buffers.
///     pub static MY_SCRATCH: f32
/// }
/// let buf = MY_SCRATCH.take(16);
/// assert_eq!(buf.len(), 16);
/// ```
#[macro_export]
macro_rules! scratch_pool {
    ($(#[$meta:meta])* $vis:vis static $name:ident : $ty:ty) => {
        $(#[$meta])*
        $vis static $name: $crate::ScratchPool<$ty> = {
            ::std::thread_local! {
                static SHELVES: ::std::cell::RefCell<$crate::PoolShelves<$ty>> =
                    const { ::std::cell::RefCell::new($crate::PoolShelves::new()) };
            }
            $crate::ScratchPool::new(&SHELVES)
        };
    };
}

scratch_pool! {
    /// Process-wide `u64` scratch (NTT residue vectors, coefficient
    /// accumulators).
    pub static U64_SCRATCH: u64
}

scratch_pool! {
    /// Process-wide `f64` scratch (center-lifted operands, FFT products).
    pub static F64_SCRATCH: f64
}

scratch_pool! {
    /// Process-wide `i128` scratch (fixed-point datapath registers).
    pub static I128_SCRATCH: i128
}

#[cfg(test)]
mod tests {
    use super::*;

    scratch_pool! {
        static TEST_SCRATCH: u64
    }

    #[test]
    fn take_is_sized_and_zeroed() {
        let buf = TEST_SCRATCH.take(10);
        assert_eq!(buf.len(), 10);
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn recycles_within_a_size_class() {
        scratch_pool! {
            static LOCAL: u64
        }
        let before = LOCAL.stats();
        {
            let mut a = LOCAL.take(100);
            a[0] = 7;
        } // returned to the 128-class shelf
        let b = LOCAL.take(90); // same class: must be recycled
        assert_eq!(b.len(), 90);
        assert!(b.iter().all(|&x| x == 0), "recycled buffer must be cleared");
        let after = LOCAL.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses + 1);
        assert!(after.bytes_recycled >= before.bytes_recycled + 128 * 8);
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        let mut a = TEST_SCRATCH.take(16);
        let mut b = TEST_SCRATCH.take(16);
        a[0] = 1;
        b[0] = 2;
        assert_eq!(a[0], 1);
        assert_eq!(b[0], 2);
    }

    #[test]
    fn take_copied_matches_source() {
        let src: Vec<u64> = (0..33).map(|i| i * i).collect();
        let buf = TEST_SCRATCH.take_copied(&src);
        assert_eq!(&buf[..], &src[..]);
    }

    #[test]
    fn detach_escapes_without_recycling() {
        scratch_pool! {
            static DETACH_POOL: u64
        }
        let owned: Vec<u64> = DETACH_POOL.take(64).detach();
        assert_eq!(owned.len(), 64);
        let s = DETACH_POOL.stats();
        // a fresh take after detach cannot hit (nothing was returned)
        let _again = DETACH_POOL.take(64);
        assert_eq!(DETACH_POOL.stats().hits, s.hits);
    }

    #[test]
    fn shelf_retention_is_capped() {
        scratch_pool! {
            static CAP_POOL: u64
        }
        let guards: Vec<_> = (0..MAX_BUFFERS_PER_CLASS + 4)
            .map(|_| CAP_POOL.take(32))
            .collect();
        drop(guards);
        // Only MAX_BUFFERS_PER_CLASS buffers were retained, so checking
        // out one more than the cap must include at least one miss.
        CAP_POOL.reset_stats();
        let guards: Vec<_> = (0..MAX_BUFFERS_PER_CLASS + 1)
            .map(|_| CAP_POOL.take(32))
            .collect();
        let s = CAP_POOL.stats();
        assert_eq!(s.hits, MAX_BUFFERS_PER_CLASS as u64);
        assert_eq!(s.misses, 1);
        drop(guards);
    }

    #[test]
    fn pools_are_thread_local_but_counters_global() {
        scratch_pool! {
            static THREADED: u64
        }
        // Warm this thread's shelf, then verify another thread misses
        // (its shelf starts empty) while the shared counters see both.
        drop(THREADED.take(16));
        THREADED.reset_stats();
        drop(THREADED.take(16)); // hit on this thread
        std::thread::scope(|s| {
            s.spawn(|| drop(THREADED.take(16))).join().unwrap();
        });
        let stats = THREADED.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn hit_rate_bounds() {
        let s = PoolStats {
            hits: 3,
            misses: 1,
            bytes_recycled: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let none = PoolStats {
            hits: 0,
            misses: 0,
            bytes_recycled: 0,
        };
        assert_eq!(none.hit_rate(), 0.0);
    }
}
