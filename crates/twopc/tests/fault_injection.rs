//! End-to-end fault-injection sweeps over the convolution protocol.
//!
//! The acceptance contract of the fault-tolerant wire path: under *any*
//! seeded fault schedule the protocol either completes bit-identically
//! to a clean run (recovered by checksum-reject + retransmission) or
//! returns a typed [`FlashError`] — it never panics and never silently
//! corrupts. A second test drives the runtime noise guard to the
//! exact-NTT fallback and checks the process-global telemetry counter.

use flash_2pc::protocol::{expected_conv_mod, ConvProtocol};
use flash_2pc::{FaultConfig, FaultPlan, FlashError, ProtocolError, TransportConfig};
use flash_he::encoding::ConvShape;
use flash_he::{HeParams, PolyMulBackend, SecretKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn toy_conv_inputs(shape: &ConvShape) -> (Vec<i64>, Vec<i64>) {
    let x: Vec<i64> = (0..shape.input_len())
        .map(|i| ((i as i64 * 5) % 7) - 3)
        .collect();
    let w: Vec<i64> = (0..shape.m * shape.kernel_len())
        .map(|i| ((i as i64 * 3) % 7) - 3)
        .collect();
    (x, w)
}

/// Sweeps 1000 seeded fault schedules — 500 moderate ones with a full
/// retry budget, 500 harsh ones (60% drop rate) with a single retry —
/// and demands the recover-bit-identically-or-fail-typed dichotomy for
/// every single schedule. Both outcomes must occur in bulk, so the test
/// is evidence about the recovery path *and* the typed failure path.
#[test]
fn thousand_seeded_fault_schedules_recover_or_fail_typed() {
    let params = HeParams::toy();
    let shape = ConvShape {
        c: 1,
        h: 3,
        w: 3,
        m: 1,
        k: 2,
    };
    let (x, w) = toy_conv_inputs(&shape);
    let mut key_rng = StdRng::seed_from_u64(42);
    let sk = SecretKey::generate(&params, &mut key_rng);

    let clean_proto = ConvProtocol::new(params.clone(), shape, PolyMulBackend::Ntt);
    let mut rng = StdRng::seed_from_u64(1);
    let (clean_shares, _) = clean_proto.run(&sk, &x, &w, &mut rng).unwrap();

    let mut recovered = 0usize;
    let mut failed = 0usize;
    let mut faults_seen = 0usize;
    for seed in 0..1000u64 {
        let (faults, max_retries) = if seed < 500 {
            (FaultConfig::moderate(seed), 8)
        } else {
            (
                FaultConfig {
                    seed,
                    flip: 0.3,
                    truncate: 0.2,
                    drop: 0.6,
                    duplicate: 0.1,
                    reorder: 0.1,
                },
                1,
            )
        };
        let cfg = TransportConfig {
            faults: Some(FaultPlan::Random(faults)),
            max_retries,
            verify_checksums: true,
            backoff: Default::default(),
        };
        let proto = ConvProtocol::new(params.clone(), shape, PolyMulBackend::Ntt)
            .with_transport_config(cfg);
        // Same protocol RNG as the clean run: the fault injector draws
        // from its own stream, so a recovered run must be bit-identical.
        let mut rng = StdRng::seed_from_u64(1);
        match proto.run(&sk, &x, &w, &mut rng) {
            Ok((shares, stats)) => {
                assert_eq!(
                    shares, clean_shares,
                    "seed {seed}: recovered run diverged from the clean run"
                );
                faults_seen += stats.faults_detected + stats.frames_retried;
                recovered += 1;
            }
            Err(e) => {
                assert!(
                    matches!(
                        e,
                        FlashError::Protocol(
                            ProtocolError::RetriesExhausted { .. }
                                | ProtocolError::DeadlineExceeded { .. }
                        )
                    ),
                    "seed {seed}: unexpected failure {e:?}"
                );
                failed += 1;
            }
        }
    }
    assert_eq!(recovered + failed, 1000);
    assert!(recovered > 100, "only {recovered}/1000 schedules recovered");
    assert!(failed > 100, "only {failed}/1000 schedules failed typed");
    assert!(faults_seen > 0, "sweep never observed a detected fault");
}

/// Shrinking the noise margin to zero forces the guard to re-run every
/// band of an approximate backend on the exact NTT path. The fallbacks
/// must show up in the per-run stats *and* the process-global telemetry
/// counter, and the reconstruction must still be exact.
#[test]
fn shrunken_margin_records_fallbacks_in_telemetry() {
    let params = HeParams::test_256();
    let shape = ConvShape {
        c: 2,
        h: 5,
        w: 5,
        m: 2,
        k: 3,
    };
    let (x, w) = toy_conv_inputs(&shape);
    let mut rng = StdRng::seed_from_u64(9);
    let sk = SecretKey::generate(&params, &mut rng);

    let mut cfg = flash_fft::ApproxFftConfig::uniform(
        params.n,
        flash_math::fixed::FxpFormat::new(18, 34),
        30,
    );
    cfg.max_shift = 30;
    let proto =
        ConvProtocol::new(params, shape, PolyMulBackend::approx(cfg)).with_noise_margin(0.0);

    // Counters are process-global (other tests in this binary may also
    // bump them), so only the delta across this run is meaningful and
    // only a `>=` comparison is sound.
    let before = flash_telemetry::counter!("hconv.ntt_fallbacks").get();
    let (shares, stats) = proto.run(&sk, &x, &w, &mut rng).unwrap();
    let after = flash_telemetry::counter!("hconv.ntt_fallbacks").get();

    assert!(stats.ntt_fallbacks > 0, "zero margin must force fallbacks");
    assert_eq!(
        stats.ntt_fallbacks, stats.ciphertexts_down,
        "every (oc, band) job must have fallen back"
    );
    assert!(
        after - before >= stats.ntt_fallbacks as u64,
        "telemetry counter missed fallbacks: {before} -> {after}"
    );
    assert_eq!(
        proto.reconstruct(&shares),
        expected_conv_mod(&x, &w, proto.encoder().shape(), proto.ring()),
        "exact-NTT fallback must keep decryption exact"
    );
}
