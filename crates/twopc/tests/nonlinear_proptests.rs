//! Property-based tests of the executable 2PC non-linear suite: every
//! primitive against its plaintext reference over adversarial inputs —
//! negatives, exact ties, and values at the edge of the share ring's
//! signed range — plus wire-fault behavior (bit-identical recovery or a
//! typed error, never a silently wrong share).

use flash_2pc::nonlinear::exec::maxpool_reference;
use flash_2pc::shares::ShareRing;
use flash_2pc::transport::{FaultConfig, FaultPlan, TransportConfig};
use flash_2pc::{FlashError, NonlinearSession};
use flash_nn::quant::{div_round_half_away, Requantizer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn session(l: u32, seed: u64) -> NonlinearSession {
    NonlinearSession::new(ShareRing::new(l), TransportConfig::default(), seed)
}

/// Signed values spanning half the `l`-bit centered range (so pairwise
/// *differences* still fit the signed range — the comparison tree's
/// contract), biased toward the edges (0, ±1, ±2^{l-2}) where the
/// comparison logic breaks first.
fn comparable_values(l: u32, len: usize) -> impl Strategy<Value = Vec<i64>> {
    let quarter = 1i64 << (l - 2);
    prop::collection::vec((0u8..12, any::<i64>()), 1..=len).prop_map(move |pairs| {
        pairs
            .into_iter()
            .map(|(pick, raw)| match pick {
                0 => 0,
                1 => 1,
                2 => -1,
                3 => quarter - 1,
                4 => -quarter,
                5 => -(quarter - 1),
                _ => raw.rem_euclid(2 * quarter) - quarter,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DReLU equals the plaintext sign test (`x ≥ 0`, so `drelu(0) = 1`)
    /// for every ring width, including at the exact extremes of the
    /// signed range.
    #[test]
    fn drelu_matches_sign_reference(l in 4u32..24, seed in 0u64..1000) {
        let half = 1i64 << (l - 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sess = session(l, seed ^ 0xd1);
        let ring = sess.ring();
        use rand::Rng;
        let mut x: Vec<i64> = (0..17).map(|_| rng.gen_range(-half..half)).collect();
        x.extend_from_slice(&[0, 1, -1, half - 1, -half, -(half - 1)]);
        let (xc, xs) = ring.share_vec(&x, &mut rng);
        let (dc, ds) = sess.drelu(&xc, &xs, &mut rng).unwrap();
        for (i, &v) in x.iter().enumerate() {
            let got = dc[i] ^ ds[i];
            prop_assert_eq!(got, u8::from(v >= 0), "x = {} at l = {}", v, l);
        }
    }

    /// The truncation primitive is bit-exact against
    /// [`Requantizer::apply`]: shift rounding half away from zero, then
    /// clamp — for negative inputs and at the ring edge too.
    #[test]
    fn truncation_matches_requantizer(
        l in 8u32..24,
        shift in 0u32..12,
        out_bits in 2u32..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sess = session(l, seed ^ 0x7c);
        let ring = sess.ring();
        let rq = Requantizer { shift, out_bits };
        let half = 1i64 << (l - 1);
        use rand::Rng;
        let mut x: Vec<i64> = (0..13).map(|_| rng.gen_range(-half..half)).collect();
        x.extend_from_slice(&[0, -1, half - 1, -half]);
        let (xc, xs) = ring.share_vec(&x, &mut rng);
        let (yc, ys) = sess.requant(&xc, &xs, rq, &mut rng).unwrap();
        let got = ring.reconstruct_vec(&yc, &ys);
        for (i, &v) in x.iter().enumerate() {
            prop_assert_eq!(got[i], rq.apply(v), "x = {}, shift {}, bits {}", v, shift, out_bits);
        }
    }

    /// Secret-shared max pooling equals the plaintext reference over
    /// random geometry, with negatives and exact ties in the windows.
    #[test]
    fn maxpool_matches_reference(
        c in 1usize..3,
        h in 2usize..6,
        w in 2usize..6,
        k in 1usize..3,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let l = 16;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sess = session(l, seed ^ 0x3a);
        let ring = sess.ring();
        use rand::Rng;
        // small magnitudes make in-window ties frequent
        let x: Vec<i64> = (0..c * h * w).map(|_| rng.gen_range(-3..4)).collect();
        let (xc, xs) = ring.share_vec(&x, &mut rng);
        let (yc, ys) = sess.maxpool(&xc, &xs, (c, h, w), k, stride, pad, &mut rng).unwrap();
        let got = ring.reconstruct_vec(&yc, &ys);
        prop_assert_eq!(got, maxpool_reference(&x, (c, h, w), k, stride, pad));
    }

    /// Global average pooling rounds half away from zero — the
    /// requantizer's rule, not truncating division.
    #[test]
    fn avgpool_matches_rounding_reference(
        channels in 1usize..4,
        spatial in 1usize..9,
        seed in 0u64..1000,
    ) {
        let l = 16;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sess = session(l, seed ^ 0xa7);
        let ring = sess.ring();
        use rand::Rng;
        let x: Vec<i64> = (0..channels * spatial).map(|_| rng.gen_range(-50..50)).collect();
        let (xc, xs) = ring.share_vec(&x, &mut rng);
        let (yc, ys) = sess.avgpool_global(&xc, &xs, channels, spatial, &mut rng).unwrap();
        let got = ring.reconstruct_vec(&yc, &ys);
        for ch in 0..channels {
            let sum: i64 = x[ch * spatial..(ch + 1) * spatial].iter().sum();
            prop_assert_eq!(got[ch], div_round_half_away(sum, spatial as i64));
        }
    }

    /// The secure argmax reveals the *first* maximal index on ties.
    #[test]
    fn argmax_reveals_first_max(logits in comparable_values(16, 12), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sess = session(16, seed ^ 0x9e);
        let ring = sess.ring();
        let (xc, xs) = ring.share_vec(&logits, &mut rng);
        let got = sess.argmax(&xc, &xs, &mut rng).unwrap();
        let mut want = 0;
        for (i, &v) in logits.iter().enumerate().skip(1) {
            if v > logits[want] {
                want = i;
            }
        }
        prop_assert_eq!(got, want, "logits {:?}", logits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under a random fault plan the non-linear stack either recovers
    /// *bit-identically* to the clean session (detections must come
    /// with retransmissions) or fails with a typed protocol error —
    /// never a silently different share.
    #[test]
    fn faulty_wire_recovers_bit_identically_or_fails_typed(seed in 0u64..500) {
        let l = 16;
        let rq = Requantizer { shift: 3, out_bits: 4 };
        type RunOut = (Vec<i64>, u64, u64);
        let run = |transport: TransportConfig| -> Result<RunOut, FlashError> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sess = NonlinearSession::new(ShareRing::new(l), transport, 0x5eed);
            let ring = sess.ring();
            use rand::Rng;
            let x: Vec<i64> = (0..40).map(|_| rng.gen_range(-4000..4000)).collect();
            let (xc, xs) = ring.share_vec(&x, &mut rng);
            let (yc, ys) = sess.relu_requant(&xc, &xs, rq, &mut rng)?;
            let winner = sess.argmax(&yc, &ys, &mut rng)?;
            let mut out = ring.reconstruct_vec(&yc, &ys);
            out.push(winner as i64);
            let stats = sess.stats();
            Ok((out, stats.faults_detected, stats.frames_retried))
        };
        let (clean, clean_faults, _) =
            run(TransportConfig::default()).expect("clean run cannot fail");
        prop_assert_eq!(clean_faults, 0, "clean wire must detect nothing");
        let plan = FaultPlan::Random(FaultConfig::moderate(seed ^ 0xfa17));
        match run(TransportConfig::faulty(plan)) {
            Ok((chaotic, faults, retried)) => {
                prop_assert_eq!(chaotic, clean, "recovery must be bit-identical");
                prop_assert!(
                    faults == 0 || retried > 0,
                    "detections without retransmissions cannot succeed"
                );
            }
            Err(FlashError::Protocol(_)) | Err(FlashError::Wire(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}
