//! Bit-level robustness of the ciphertext wire path.
//!
//! Three layered guarantees:
//! 1. with checksums on, **every** single-bit flip anywhere in a framed
//!    ciphertext is detected and the clean frame is recovered by
//!    retransmission;
//! 2. with checksums off (detection disabled), a payload flip either
//!    fails ciphertext deserialization with a typed [`WireError`] or
//!    lands inside the analytical per-bit noise bound — and whenever
//!    that bound stays below the decryption ceiling, decryption is
//!    bit-identical to the clean ciphertext;
//! 3. framing round-trips arbitrary payload schedules under random
//!    truncation/drop/duplication/reorder faults, or fails typed.

use flash_2pc::transport::{
    FaultConfig, FaultOp, FaultPlan, InMemoryTransport, Transport, TransportConfig,
};
use flash_2pc::ProtocolError;
use flash_he::serialize;
use flash_he::{HeParams, Poly, SecretKey};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn toy_ciphertext() -> (HeParams, SecretKey, Poly, Vec<u8>) {
    let params = HeParams::toy();
    let mut rng = StdRng::seed_from_u64(2024);
    let sk = SecretKey::generate(&params, &mut rng);
    let m = Poly::from_signed(&[3, -1, 4, -1, 5, 0, -2, 6], params.t);
    let ct = sk.encrypt(&m, &mut rng);
    let bytes = serialize::ciphertext_to_bytes(&ct);
    (params, sk, m, bytes)
}

/// Guarantee 1: the checksum catches every single-bit flip of the frame
/// (header and payload alike) and the transport recovers the exact
/// payload from the retransmission.
#[test]
fn every_single_bit_flip_in_a_ciphertext_frame_recovers() {
    let (_, _, _, payload) = toy_ciphertext();
    let frame_len = flash_2pc::transport::FRAME_HEADER_BYTES + payload.len();
    for byte in 0..frame_len {
        for bit in 0..8u8 {
            let cfg =
                TransportConfig::faulty(FaultPlan::Scripted(vec![FaultOp::FlipBit { byte, bit }]));
            let mut t = InMemoryTransport::new(cfg);
            t.send(&payload).unwrap();
            let got = t.recv().unwrap();
            assert_eq!(got, payload, "flip at byte {byte} bit {bit}");
            let stats = t.stats();
            assert!(
                stats.faults_detected >= 1 && stats.frames_retried >= 1,
                "flip at byte {byte} bit {bit} was not detected: {stats:?}"
            );
        }
    }
}

/// Guarantee 2: with detection disabled, an undetected payload flip
/// perturbs the decryption phase by at most `±2^b` (the flipped bit's
/// weight, for `c0` and `c1` flips alike — a `c1` flip multiplies a
/// scaled monomial into the ternary key, which cannot grow the ∞-norm).
/// Whenever `clean_noise + 2^b` stays below the ceiling `q/(2t)`,
/// decryption must be bit-identical to the clean run.
#[test]
fn undetected_payload_flips_stay_within_the_analytical_noise_bound() {
    let (params, sk, m, payload) = toy_ciphertext();
    let cb = serialize::coeff_bytes(params.q);
    let clean_noise = {
        let ct = serialize::ciphertext_from_bytes(&payload, params.n, params.q).unwrap();
        sk.noise(&ct, &m).inf_norm() as f64
    };
    let ceiling = params.noise_ceiling() as f64;
    let q = params.q as f64;
    let mut undetected = 0usize;
    let mut rejected = 0usize;
    for byte in 0..payload.len() {
        for bit in 0..8u32 {
            let mut bad = payload.clone();
            bad[byte] ^= 1 << bit;
            match serialize::ciphertext_from_bytes(&bad, params.n, params.q) {
                // typed rejection (coefficient left Z_q) counts as detected
                Err(_) => rejected += 1,
                Ok(ct) => {
                    undetected += 1;
                    // centered magnitude of the coefficient delta ±2^b mod q
                    let weight = ((byte % cb) as u32 * 8 + bit) as f64;
                    let delta = (2.0f64).powf(weight).min(q - (2.0f64).powf(weight));
                    if clean_noise + delta < ceiling {
                        assert_eq!(
                            sk.decrypt(&ct),
                            m,
                            "byte {byte} bit {bit}: in-budget flip changed decryption"
                        );
                    }
                }
            }
        }
    }
    // both arms of the dichotomy must actually be exercised
    assert!(
        undetected > 0,
        "sweep never produced a decodable corruption"
    );
    assert!(rejected > 0, "sweep never produced a wire rejection");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Guarantee 3: random multi-fault schedules either deliver every
    /// payload byte-identically and in order, or fail with the typed
    /// retry-exhaustion error — never silently corrupt, never panic.
    #[test]
    fn framing_roundtrips_under_random_fault_schedules(
        seed in 0u64..10_000,
        n_msgs in 1usize..12,
        drop in 0.0f64..0.6,
    ) {
        let cfg = TransportConfig {
            faults: Some(FaultPlan::Random(FaultConfig {
                seed,
                flip: 0.15,
                truncate: 0.15,
                drop,
                duplicate: 0.15,
                reorder: 0.15,
            })),
            max_retries: 6,
            verify_checksums: true,
            backoff: Default::default(),
        };
        let mut t = InMemoryTransport::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let sent: Vec<Vec<u8>> = (0..n_msgs)
            .map(|_| (0..rng.gen_range(1..120)).map(|_| rng.gen_range(0..256u32) as u8).collect())
            .collect();
        for p in &sent {
            t.send(p).unwrap();
        }
        for (i, p) in sent.iter().enumerate() {
            match t.recv() {
                Ok(got) => prop_assert_eq!(&got, p, "message {} corrupted", i),
                Err(e) => {
                    prop_assert!(
                        matches!(
                            e,
                            ProtocolError::RetriesExhausted { .. }
                                | ProtocolError::DeadlineExceeded { .. }
                        ),
                        "unexpected error {:?}", e
                    );
                    break;
                }
            }
        }
    }
}
