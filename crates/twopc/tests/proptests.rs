//! Property-based tests for secret sharing and the protocol layer.

use flash_2pc::matvec::MatVecProtocol;
use flash_2pc::protocol::{expected_conv_mod, ConvProtocol};
use flash_2pc::shares::ShareRing;
use flash_he::encoding::ConvShape;
use flash_he::matvec::matvec_reference;
use flash_he::{HeParams, PolyMulBackend, SecretKey};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharing_roundtrips_any_values(l in 2u32..32, xs in prop::collection::vec(any::<i32>(), 1..64)) {
        let ring = ShareRing::new(l);
        let vals: Vec<i64> = xs.iter().map(|&x| x as i64).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let (c, s) = ring.share_vec(&vals, &mut rng);
        let back = ring.reconstruct_vec(&c, &s);
        for (orig, got) in vals.iter().zip(&back) {
            // equality holds modulo 2^l, in the centered representative
            let want = ring.to_signed(ring.reduce(*orig));
            prop_assert_eq!(want, *got);
        }
    }

    #[test]
    fn ring_add_sub_inverse(l in 2u32..32, a in any::<u64>(), b in any::<u64>()) {
        let ring = ShareRing::new(l);
        let a = a & (ring.modulus() - 1);
        let b = b & (ring.modulus() - 1);
        prop_assert_eq!(ring.sub(ring.add(a, b), b), a);
        prop_assert_eq!(ring.add(ring.sub(a, b), b), a);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full protocol correctness over random small convolution geometry.
    #[test]
    fn conv_protocol_correct(seed in 0u64..1000, m_ch in 1usize..3, k in 1usize..3) {
        let params = HeParams::test_256();
        let shape = ConvShape { c: 2, h: 5, w: 5, m: m_ch, k };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = ConvProtocol::new(params, shape, PolyMulBackend::FftF64);
        use rand::Rng;
        let x: Vec<i64> = (0..shape.input_len()).map(|_| rng.gen_range(-8..8)).collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len()).map(|_| rng.gen_range(-8..8)).collect();
        let (shares, _) = proto.run(&sk, &x, &w, &mut rng).unwrap();
        prop_assert_eq!(
            proto.reconstruct(&shares),
            expected_conv_mod(&x, &w, &shape, proto.ring())
        );
    }

    /// Full FC protocol correctness over random dimensions.
    #[test]
    fn matvec_protocol_correct(seed in 0u64..1000, ni in 4usize..40, no in 1usize..8) {
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = MatVecProtocol::new(params, ni, no, PolyMulBackend::Ntt);
        use rand::Rng;
        let x: Vec<i64> = (0..ni).map(|_| rng.gen_range(-8..8)).collect();
        let w: Vec<i64> = (0..ni * no).map(|_| rng.gen_range(-8..8)).collect();
        let ((yc, ys), _) = proto.run(&sk, &x, &w, &mut rng).unwrap();
        let ring = proto.ring();
        let want: Vec<i64> = matvec_reference(&w, &x, ni, no)
            .iter()
            .map(|&v| ring.to_signed(ring.reduce(v)))
            .collect();
        prop_assert_eq!(proto.reconstruct(&yc, &ys), want);
    }
}
