//! Arithmetic secret sharing over `Z_{2^l}`.

use rand::Rng;

/// The additive share ring `Z_{2^l}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareRing {
    l: u32,
}

impl ShareRing {
    /// Creates the ring `Z_{2^l}`, `1 ≤ l ≤ 63`.
    ///
    /// # Panics
    ///
    /// Panics for `l` outside `1..=63`.
    pub fn new(l: u32) -> Self {
        assert!((1..=63).contains(&l), "share width must be in 1..=63 bits");
        Self { l }
    }

    /// Bit width `l`.
    pub fn bits(&self) -> u32 {
        self.l
    }

    /// The ring modulus `2^l`.
    pub fn modulus(&self) -> u64 {
        1u64 << self.l
    }

    /// Reduces a signed value into `[0, 2^l)`.
    #[inline]
    pub fn reduce(&self, x: i64) -> u64 {
        (x as u64) & (self.modulus() - 1)
    }

    /// Ring addition.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        (a.wrapping_add(b)) & (self.modulus() - 1)
    }

    /// Ring subtraction.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        (a.wrapping_sub(b)) & (self.modulus() - 1)
    }

    /// Interprets a ring element as a signed value in
    /// `[-2^{l-1}, 2^{l-1})` (the two's-complement reading quantized
    /// networks use).
    #[inline]
    pub fn to_signed(&self, a: u64) -> i64 {
        debug_assert!(a < self.modulus());
        if a >= self.modulus() / 2 {
            a as i64 - self.modulus() as i64
        } else {
            a as i64
        }
    }

    /// Splits a signed vector into two additive shares.
    pub fn share_vec<R: Rng>(&self, x: &[i64], rng: &mut R) -> (Vec<u64>, Vec<u64>) {
        let mut client = Vec::with_capacity(x.len());
        let mut server = Vec::with_capacity(x.len());
        for &v in x {
            let r = rng.gen_range(0..self.modulus());
            server.push(r);
            client.push(self.sub(self.reduce(v), r));
        }
        (client, server)
    }

    /// Reconstructs the signed vector from two shares.
    pub fn reconstruct_vec(&self, a: &[u64], b: &[u64]) -> Vec<i64> {
        assert_eq!(a.len(), b.len(), "share length mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.to_signed(self.add(x, y)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn share_reconstruct_roundtrip() {
        let ring = ShareRing::new(16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x: Vec<i64> = vec![0, 1, -1, 127, -128, 32767, -32768];
        let (c, s) = ring.share_vec(&x, &mut rng);
        assert_eq!(ring.reconstruct_vec(&c, &s), x);
    }

    #[test]
    fn shares_look_uniform() {
        let ring = ShareRing::new(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = vec![5i64; 4096];
        let (c, _) = ring.share_vec(&x, &mut rng);
        // client share of a constant must not be constant
        let distinct: std::collections::HashSet<u64> = c.iter().copied().collect();
        assert!(distinct.len() > 100);
        let mean: f64 = c.iter().map(|&v| v as f64).sum::<f64>() / c.len() as f64;
        assert!((mean - 127.5).abs() < 10.0, "share mean {mean}");
    }

    #[test]
    fn ring_ops_wrap() {
        let ring = ShareRing::new(8);
        assert_eq!(ring.add(200, 100), 44);
        assert_eq!(ring.sub(10, 20), 246);
        assert_eq!(ring.to_signed(255), -1);
        assert_eq!(ring.to_signed(127), 127);
        assert_eq!(ring.reduce(-1), 255);
    }

    #[test]
    fn additivity_of_linear_ops() {
        // y = 3*x computed share-wise reconstructs to 3*x.
        let ring = ShareRing::new(12);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x: Vec<i64> = (-10..10).collect();
        let (c, s) = ring.share_vec(&x, &mut rng);
        let c3: Vec<u64> = c.iter().map(|&v| (v * 3) & (ring.modulus() - 1)).collect();
        let s3: Vec<u64> = s.iter().map(|&v| (v * 3) & (ring.modulus() - 1)).collect();
        let y = ring.reconstruct_vec(&c3, &s3);
        let want: Vec<i64> = x.iter().map(|&v| v * 3).collect();
        assert_eq!(y, want);
    }

    #[test]
    #[should_panic(expected = "share width")]
    fn rejects_zero_width() {
        ShareRing::new(0);
    }
}
