//! The wire: framing, checksums, fault injection and recovery.
//!
//! Every ciphertext the protocol moves crosses a [`Transport`] as real
//! bytes from [`flash_he::serialize`], wrapped in a length-prefixed frame
//! with a per-message checksum:
//!
//! ```text
//! [seq: u32 LE][len: u32 LE][hash: u64 LE][payload: len bytes]
//! ```
//!
//! The checksum is a word-wise multiply–xor hash chosen for the hot
//! path: one 64-bit multiply per 8 payload bytes (a CRC table walk per
//! byte would be ~8× more work and would show up against the protocol's
//! sub-millisecond medians). Detection is still deterministic for the
//! faults that matter: `x ↦ (x ⊕ w)·M` is a bijection of `Z_{2^64}` for
//! odd `M`, so two frames differing in any single bit — or any single
//! word — can never hash equal; multi-word corruption collides with
//! probability `≈ 2^-64`. The header (sequence number and length) is
//! folded into the hash seed, so a flipped `seq` cannot smuggle a stale
//! payload into the wrong slot.
//!
//! [`InMemoryTransport`] simulates one direction of a lossy link with a
//! sender-side outbox and a receiver-side recovery state machine:
//! corrupted, truncated, duplicated, reordered or dropped frames are
//! detected (checksum / length / sequence bookkeeping) and the expected
//! frame is re-requested from the outbox, up to a bounded retry budget.
//! A deterministic, seedable [`FaultPlan`] mutates frames in transit for
//! testing; recovered runs are bit-identical to clean runs because the
//! injector draws from its own RNG, never the protocol's.

use crate::error::ProtocolError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Frame header size: `seq (4) + len (4) + hash (8)`.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Maximum payload a frame may carry (defends length-field corruption
/// against absurd allocations when checksums are disabled).
const MAX_FRAME_PAYLOAD: usize = 1 << 28;

const HASH_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
/// Odd multiplier (from the splitmix64 finalizer); oddness is what makes
/// each absorb step bijective.
const HASH_MULT: u64 = 0xFF51_AFD7_ED55_8CCD;

/// Multiply–xor hash over the frame header and payload.
fn frame_hash(seq: u32, payload: &[u8]) -> u64 {
    let mut h = HASH_SEED ^ (((seq as u64) << 32) | payload.len() as u64);
    h = h.wrapping_mul(HASH_MULT);
    let mut chunks = payload.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"));
        h = (h ^ w).wrapping_mul(HASH_MULT);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(HASH_MULT);
    }
    h
}

/// Encodes one frame.
pub fn encode_frame(seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_hash(seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a received frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Shorter than the fixed header.
    TooShort,
    /// The length field disagrees with the bytes on the wire.
    LengthMismatch,
    /// The checksum does not match the header + payload.
    ChecksumMismatch,
}

/// Decodes one frame; with `verify` the checksum is enforced, without it
/// only the structural length checks run (the detection-disabled mode of
/// the robustness tests).
pub fn decode_frame(buf: &[u8], verify: bool) -> Result<(u32, &[u8]), FrameFault> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Err(FrameFault::TooShort);
    }
    let seq = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
    let hash = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    if len > MAX_FRAME_PAYLOAD || buf.len() != FRAME_HEADER_BYTES + len {
        return Err(FrameFault::LengthMismatch);
    }
    let payload = &buf[FRAME_HEADER_BYTES..];
    if verify && frame_hash(seq, payload) != hash {
        return Err(FrameFault::ChecksumMismatch);
    }
    Ok((seq, payload))
}

/// One deterministic mutation of a frame in transit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Deliver unchanged.
    None,
    /// Flip bit `bit` of byte `byte % frame_len`.
    FlipBit {
        /// Byte offset (reduced modulo the frame length).
        byte: usize,
        /// Bit index 0..8.
        bit: u8,
    },
    /// Keep only the first `keep` bytes.
    Truncate {
        /// Bytes to keep.
        keep: usize,
    },
    /// Lose the frame entirely.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Push the frame ahead of everything already queued.
    Reorder,
}

/// Per-frame fault probabilities of a seeded random schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// RNG seed — the whole schedule is a pure function of it.
    pub seed: u64,
    /// P(single-bit flip).
    pub flip: f64,
    /// P(truncation to a random prefix).
    pub truncate: f64,
    /// P(frame dropped).
    pub drop: f64,
    /// P(frame duplicated).
    pub duplicate: f64,
    /// P(frame pushed ahead of the queue).
    pub reorder: f64,
}

impl FaultConfig {
    /// A schedule exercising every fault class at moderate rates.
    pub fn moderate(seed: u64) -> Self {
        Self {
            seed,
            flip: 0.10,
            truncate: 0.05,
            drop: 0.05,
            duplicate: 0.05,
            reorder: 0.10,
        }
    }
}

/// A deterministic fault schedule for one transport direction.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Apply these ops to successive transmissions (clean afterwards).
    Scripted(Vec<FaultOp>),
    /// Seeded per-frame random faults.
    Random(FaultConfig),
}

/// Injector state compiled from a [`FaultPlan`].
#[derive(Debug)]
enum Injector {
    Scripted(VecDeque<FaultOp>),
    Random(Box<StdRng>, FaultConfig),
}

impl Injector {
    fn new(plan: &FaultPlan) -> Self {
        match plan {
            FaultPlan::Scripted(ops) => Injector::Scripted(ops.iter().copied().collect()),
            FaultPlan::Random(cfg) => {
                Injector::Random(Box::new(StdRng::seed_from_u64(cfg.seed)), *cfg)
            }
        }
    }

    fn next_op(&mut self, frame_len: usize) -> FaultOp {
        match self {
            Injector::Scripted(ops) => ops.pop_front().unwrap_or(FaultOp::None),
            Injector::Random(rng, cfg) => {
                if cfg.flip > 0.0 && rng.gen_bool(cfg.flip) {
                    return FaultOp::FlipBit {
                        byte: rng.gen_range(0..frame_len.max(1)),
                        bit: rng.gen_range(0..8u32) as u8,
                    };
                }
                if cfg.truncate > 0.0 && rng.gen_bool(cfg.truncate) {
                    return FaultOp::Truncate {
                        keep: rng.gen_range(0..frame_len.max(1)),
                    };
                }
                if cfg.drop > 0.0 && rng.gen_bool(cfg.drop) {
                    return FaultOp::Drop;
                }
                if cfg.duplicate > 0.0 && rng.gen_bool(cfg.duplicate) {
                    return FaultOp::Duplicate;
                }
                if cfg.reorder > 0.0 && rng.gen_bool(cfg.reorder) {
                    return FaultOp::Reorder;
                }
                FaultOp::None
            }
        }
    }
}

/// Deterministic retransmission pacing: exponential backoff with seeded
/// jitter, charged against a per-frame receive-deadline budget.
///
/// The in-memory link never actually sleeps — delays are *virtual*, a
/// model of what a real NIC-level retransmitter would wait — but the
/// accounting is real: each retry of frame `i` charges
/// `min(base · 2^attempt, max)` microseconds, jittered by a factor drawn
/// from a dedicated seeded RNG (so two links with the same seed charge
/// identical schedules, and the protocol's RNG is never touched). Once a
/// frame's cumulative charge exceeds `budget_us` the receiver gives up
/// with [`ProtocolError::DeadlineExceeded`] — the budgeted replacement
/// for the old attempts-only bound (which is kept, as a hard cap, for
/// pathologically cheap schedules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// First-retry delay, µs.
    pub base_us: u64,
    /// Per-retry delay ceiling, µs.
    pub max_us: u64,
    /// Jitter as a fraction of the delay: each charge is scaled by a
    /// factor uniform in `[1 - jitter, 1 + jitter]`. Clamped to `[0, 1)`.
    pub jitter: f64,
    /// Total virtual retransmission budget per frame, µs (the receive
    /// deadline). Exceeding it fails typed with
    /// [`ProtocolError::DeadlineExceeded`].
    pub budget_us: u64,
    /// Seed of the jitter RNG (independent of the fault injector's).
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            base_us: 100,
            max_us: 20_000,
            jitter: 0.5,
            budget_us: 500_000,
            seed: 0xBAC0_FF5E,
        }
    }
}

impl BackoffConfig {
    /// A tight budget for tests that want the deadline to fire quickly.
    pub fn tight(budget_us: u64) -> Self {
        Self {
            budget_us,
            ..Self::default()
        }
    }

    /// The virtual delay charged for retransmission `attempt` (1-based),
    /// before jitter: `min(base · 2^(attempt-1), max)`.
    fn raw_delay_us(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_us
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        shifted.min(self.max_us.max(self.base_us))
    }
}

/// Configuration of one transport direction.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Faults injected into transmitted frames (testing only).
    pub faults: Option<FaultPlan>,
    /// Hard cap on retransmissions per frame (kept alongside the
    /// budgeted deadline of [`BackoffConfig`]; whichever bound trips
    /// first fails the receive, typed).
    pub max_retries: u32,
    /// Enforce frame checksums (on in production; the robustness tests
    /// turn it off to measure undetected-corruption behavior).
    pub verify_checksums: bool,
    /// Retransmission pacing and the per-frame receive-deadline budget.
    pub backoff: BackoffConfig,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            faults: None,
            max_retries: 8,
            verify_checksums: true,
            backoff: BackoffConfig::default(),
        }
    }
}

impl TransportConfig {
    /// A clean, verifying transport with the default retry budget.
    pub fn clean() -> Self {
        Self::default()
    }

    /// A transport with the given fault plan.
    pub fn faulty(plan: FaultPlan) -> Self {
        Self {
            faults: Some(plan),
            ..Self::default()
        }
    }

    /// The same transport with a different backoff/deadline schedule.
    pub fn with_backoff(mut self, backoff: BackoffConfig) -> Self {
        self.backoff = backoff;
        self
    }
}

/// Byte and fault accounting of one transport direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages accepted from the sender.
    pub messages: u64,
    /// Application payload bytes accepted from the sender.
    pub payload_bytes: u64,
    /// Framed bytes that crossed the wire — headers, checksums,
    /// duplicates and retransmissions included (dropped frames are not
    /// counted; they never crossed).
    pub wire_bytes: u64,
    /// Frames the receiver rejected or discarded: checksum/length
    /// failures, duplicates, and out-of-schedule sequence numbers.
    pub faults_detected: u64,
    /// Retransmissions the receiver requested.
    pub frames_retried: u64,
    /// Virtual backoff charged across all retransmissions, µs (the
    /// receive-deadline budget each frame's retries draw from).
    pub retry_backoff_us: u64,
}

impl TransportStats {
    /// Sums two directions' accounting.
    pub fn merge(self, other: TransportStats) -> TransportStats {
        TransportStats {
            messages: self.messages + other.messages,
            payload_bytes: self.payload_bytes + other.payload_bytes,
            wire_bytes: self.wire_bytes + other.wire_bytes,
            faults_detected: self.faults_detected + other.faults_detected,
            frames_retried: self.frames_retried + other.frames_retried,
            retry_backoff_us: self.retry_backoff_us + other.retry_backoff_us,
        }
    }
}

/// One direction of a message channel carrying opaque payloads.
///
/// Implementations own framing, integrity checking and recovery: a
/// payload returned by [`Transport::recv`] is either byte-identical to
/// the payload passed to the matching [`Transport::send`] (when checksums
/// are on, up to a `≈2^-64` hash collision) or, in detection-disabled
/// test modes, possibly corrupted — the caller's deserialization layer
/// is the next line of defense.
pub trait Transport {
    /// Queues one message for delivery.
    fn send(&mut self, payload: &[u8]) -> Result<(), ProtocolError>;
    /// Delivers the next message in send order.
    fn recv(&mut self) -> Result<Vec<u8>, ProtocolError>;
    /// Accounting so far.
    fn stats(&self) -> TransportStats;
}

/// In-memory simplex link with loss/corruption recovery.
///
/// The sender retains every payload in an outbox (the real-protocol
/// analogue of a retransmission buffer); the receiver delivers messages
/// strictly in order, stashing valid early arrivals, discarding
/// duplicates, and re-requesting the expected frame when it is missing
/// or corrupt.
#[derive(Debug)]
pub struct InMemoryTransport {
    cfg: TransportConfig,
    injector: Option<Injector>,
    /// Jitter RNG of the backoff schedule — its own stream, so retry
    /// pacing perturbs neither the fault injector nor the protocol.
    backoff_rng: Box<StdRng>,
    /// Clean payloads by sequence number (retransmission source).
    outbox: Vec<Vec<u8>>,
    /// Frames in flight.
    wire: VecDeque<Vec<u8>>,
    /// Valid frames that arrived ahead of the expected sequence number.
    stash: BTreeMap<u32, Vec<u8>>,
    /// Next sequence number the receiver expects.
    next_recv: u32,
    stats: TransportStats,
}

impl InMemoryTransport {
    /// Builds the link from a configuration.
    pub fn new(cfg: TransportConfig) -> Self {
        let injector = cfg.faults.as_ref().map(Injector::new);
        let backoff_rng = Box::new(StdRng::seed_from_u64(cfg.backoff.seed));
        Self {
            cfg,
            injector,
            backoff_rng,
            outbox: Vec::new(),
            wire: VecDeque::new(),
            stash: BTreeMap::new(),
            next_recv: 0,
            stats: TransportStats::default(),
        }
    }

    /// Charges one retransmission's virtual backoff: exponential in the
    /// attempt number, jittered deterministically. Returns the charge.
    fn charge_backoff(&mut self, attempt: u32) -> u64 {
        let b = &self.cfg.backoff;
        let raw = b.raw_delay_us(attempt) as f64;
        let j = b.jitter.clamp(0.0, 0.999);
        let factor = if j > 0.0 {
            1.0 - j + 2.0 * j * self.backoff_rng.gen_range(0.0f64..1.0)
        } else {
            1.0
        };
        let charged = (raw * factor).round().max(1.0) as u64;
        self.stats.retry_backoff_us += charged;
        charged
    }

    /// A clean verifying link.
    pub fn clean() -> Self {
        Self::new(TransportConfig::default())
    }

    fn push_wire(&mut self, frame: Vec<u8>) {
        self.stats.wire_bytes += frame.len() as u64;
        self.wire.push_back(frame);
    }

    /// Whether a message the receiver has not yet consumed has been
    /// queued (delivered, in flight, or recoverable from the outbox).
    pub fn has_pending(&self) -> bool {
        (self.next_recv as usize) < self.outbox.len()
    }

    /// Frames (or re-frames) `outbox[seq]` and puts it on the wire,
    /// applying the injector's next fault op.
    fn transmit(&mut self, seq: u32) {
        let frame = encode_frame(seq, &self.outbox[seq as usize]);
        let op = match self.injector.as_mut() {
            Some(inj) => inj.next_op(frame.len()),
            None => FaultOp::None,
        };
        match op {
            FaultOp::None => self.push_wire(frame),
            FaultOp::Drop => {}
            FaultOp::Duplicate => {
                self.push_wire(frame.clone());
                self.push_wire(frame);
            }
            FaultOp::FlipBit { byte, bit } => {
                let mut f = frame;
                let i = byte % f.len();
                f[i] ^= 1 << (bit & 7);
                self.push_wire(f);
            }
            FaultOp::Truncate { keep } => {
                let mut f = frame;
                f.truncate(keep.min(f.len()));
                self.push_wire(f);
            }
            FaultOp::Reorder => {
                self.stats.wire_bytes += frame.len() as u64;
                self.wire.push_front(frame);
            }
        }
    }
}

impl Transport for InMemoryTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), ProtocolError> {
        self.stats.messages += 1;
        self.stats.payload_bytes += payload.len() as u64;
        self.outbox.push(payload.to_vec());
        self.transmit((self.outbox.len() - 1) as u32);
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, ProtocolError> {
        let want = self.next_recv;
        if want as usize >= self.outbox.len() {
            return Err(ProtocolError::UnknownFrame { seq: want });
        }
        let mut attempts = 0u32;
        let mut spent_us = 0u64;
        loop {
            if let Some(p) = self.stash.remove(&want) {
                self.next_recv += 1;
                return Ok(p);
            }
            let Some(frame) = self.wire.pop_front() else {
                // The expected frame is gone (dropped, or consumed as a
                // corrupt arrival): re-request it from the outbox after
                // charging this attempt's backoff against the frame's
                // receive-deadline budget. The retransmission passes
                // through the injector again.
                if attempts >= self.cfg.max_retries {
                    return Err(ProtocolError::RetriesExhausted {
                        seq: want,
                        attempts,
                    });
                }
                attempts += 1;
                spent_us += self.charge_backoff(attempts);
                if spent_us > self.cfg.backoff.budget_us {
                    return Err(ProtocolError::DeadlineExceeded {
                        seq: want,
                        budget_us: self.cfg.backoff.budget_us,
                        spent_us,
                    });
                }
                self.stats.frames_retried += 1;
                self.transmit(want);
                continue;
            };
            match decode_frame(&frame, self.cfg.verify_checksums) {
                Err(_) => self.stats.faults_detected += 1,
                Ok((seq, payload)) => {
                    if seq as usize >= self.outbox.len() {
                        // With checksums off, a flipped sequence field can
                        // forge an out-of-schedule id; treat as corruption.
                        self.stats.faults_detected += 1;
                    } else if seq == want {
                        let payload = payload.to_vec();
                        self.next_recv += 1;
                        return Ok(payload);
                    } else if seq > want {
                        match self.stash.entry(seq) {
                            std::collections::btree_map::Entry::Vacant(e) => {
                                e.insert(payload.to_vec());
                            }
                            // Duplicate of an already-stashed frame.
                            std::collections::btree_map::Entry::Occupied(_) => {
                                self.stats.faults_detected += 1
                            }
                        }
                    } else {
                        // Duplicate of an already-delivered frame.
                        self.stats.faults_detected += 1;
                    }
                }
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// Thread-safe handle over an [`InMemoryTransport`] so one direction of a
/// session can be driven from different worker threads.
///
/// Cloned handles share the same link state (`Arc<Mutex>`): any clone may
/// send, any clone may receive, and the full framing/recovery/fault
/// machinery of the single-threaded transport applies unchanged. Unlike
/// [`InMemoryTransport::recv`] — which errors immediately when nothing
/// was sent — `recv` here *blocks* on a condition variable until a sender
/// queues the expected message or `recv_timeout` elapses, failing typed
/// with [`ProtocolError::RecvTimeout`] so a stalled peer can never hang a
/// worker forever.
///
/// The single-threaded `InMemoryTransport` remains the fast path for
/// in-process protocol runs (no lock, no wakeups); this wrapper exists
/// for the serving layer, where sessions live on worker threads.
#[derive(Debug, Clone)]
pub struct SharedTransport {
    link: Arc<SharedLink>,
    recv_timeout: Duration,
}

#[derive(Debug)]
struct SharedLink {
    inner: Mutex<InMemoryTransport>,
    sent: Condvar,
}

impl SharedTransport {
    /// Builds the link with the default 10 s receive deadline.
    pub fn new(cfg: TransportConfig) -> Self {
        Self::with_timeout(cfg, Duration::from_secs(10))
    }

    /// Builds the link with an explicit blocking-receive deadline.
    pub fn with_timeout(cfg: TransportConfig, recv_timeout: Duration) -> Self {
        SharedTransport {
            link: Arc::new(SharedLink {
                inner: Mutex::new(InMemoryTransport::new(cfg)),
                sent: Condvar::new(),
            }),
            recv_timeout,
        }
    }

    /// A clean verifying link.
    pub fn clean() -> Self {
        Self::new(TransportConfig::default())
    }
}

impl Transport for SharedTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), ProtocolError> {
        let mut t = self.link.inner.lock().unwrap_or_else(|e| e.into_inner());
        t.send(payload)?;
        self.link.sent.notify_all();
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<u8>, ProtocolError> {
        let mut t = self.link.inner.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + self.recv_timeout;
        while !t.has_pending() {
            let now = Instant::now();
            if now >= deadline {
                return Err(ProtocolError::RecvTimeout {
                    seq: t.next_recv,
                    waited_ms: self.recv_timeout.as_millis() as u64,
                });
            }
            t = self
                .link
                .sent
                .wait_timeout(t, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        t.recv()
    }

    fn stats(&self) -> TransportStats {
        self.link
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats()
    }
}

// Compile-time guarantee that endpoints can move to worker threads: the
// serving layer parks sessions on a pool, so `Send` (and `Sync` for the
// shared handle) is part of the transport contract, not an accident.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<InMemoryTransport>();
    assert_send_sync::<SharedTransport>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads() -> Vec<Vec<u8>> {
        (0..6u8)
            .map(|i| {
                (0..40)
                    .map(|j| i.wrapping_mul(37).wrapping_add(j))
                    .collect()
            })
            .collect()
    }

    fn roundtrip(cfg: TransportConfig) -> (Vec<Vec<u8>>, TransportStats) {
        let mut t = InMemoryTransport::new(cfg);
        let sent = payloads();
        for p in &sent {
            t.send(p).unwrap();
        }
        let got: Vec<Vec<u8>> = (0..sent.len()).map(|_| t.recv().unwrap()).collect();
        (got, t.stats())
    }

    #[test]
    fn clean_link_delivers_in_order_with_exact_accounting() {
        let (got, stats) = roundtrip(TransportConfig::default());
        assert_eq!(got, payloads());
        assert_eq!(stats.messages, 6);
        assert_eq!(stats.payload_bytes, 6 * 40);
        assert_eq!(stats.wire_bytes, 6 * (40 + FRAME_HEADER_BYTES as u64));
        assert_eq!(stats.faults_detected, 0);
        assert_eq!(stats.frames_retried, 0);
    }

    #[test]
    fn every_scripted_fault_class_recovers() {
        for op in [
            FaultOp::FlipBit { byte: 21, bit: 3 },
            FaultOp::Truncate { keep: 7 },
            FaultOp::Truncate { keep: 0 },
            FaultOp::Drop,
            FaultOp::Duplicate,
            FaultOp::Reorder,
        ] {
            let cfg = TransportConfig::faulty(FaultPlan::Scripted(vec![FaultOp::None, op]));
            let (got, stats) = roundtrip(cfg);
            assert_eq!(got, payloads(), "{op:?}");
            match op {
                FaultOp::None | FaultOp::Reorder => {}
                FaultOp::Duplicate => assert!(stats.faults_detected > 0, "{op:?}"),
                FaultOp::Drop => assert!(stats.frames_retried > 0, "{op:?}"),
                _ => assert!(
                    stats.faults_detected > 0 && stats.frames_retried > 0,
                    "{op:?}: {stats:?}"
                ),
            }
        }
    }

    #[test]
    fn reordered_frames_are_stashed_not_retried() {
        // Reorder pushes frame 2 ahead of frames 0 and 1.
        let cfg = TransportConfig::faulty(FaultPlan::Scripted(vec![
            FaultOp::None,
            FaultOp::None,
            FaultOp::Reorder,
        ]));
        let (got, stats) = roundtrip(cfg);
        assert_eq!(got, payloads());
        assert_eq!(stats.frames_retried, 0, "stash should absorb reordering");
    }

    #[test]
    fn exhausted_retries_return_typed_error() {
        // Every transmission (including retransmissions) is dropped.
        let cfg = TransportConfig {
            faults: Some(FaultPlan::Random(FaultConfig {
                seed: 1,
                flip: 0.0,
                truncate: 0.0,
                drop: 1.0,
                duplicate: 0.0,
                reorder: 0.0,
            })),
            max_retries: 3,
            verify_checksums: true,
            backoff: BackoffConfig::default(),
        };
        let mut t = InMemoryTransport::new(cfg);
        t.send(b"hello").unwrap();
        assert_eq!(
            t.recv(),
            Err(ProtocolError::RetriesExhausted {
                seq: 0,
                attempts: 3
            })
        );
    }

    #[test]
    fn exhausted_deadline_budget_returns_typed_error() {
        // A generous retry cap but a budget two retries cannot fit: the
        // deadline trips first. jitter = 0 makes the charges exact
        // (100 µs + 200 µs > 250 µs on the second retry).
        let cfg = TransportConfig {
            faults: Some(FaultPlan::Random(FaultConfig {
                seed: 1,
                flip: 0.0,
                truncate: 0.0,
                drop: 1.0,
                duplicate: 0.0,
                reorder: 0.0,
            })),
            max_retries: 1000,
            verify_checksums: true,
            backoff: BackoffConfig {
                jitter: 0.0,
                ..BackoffConfig::tight(250)
            },
        };
        let mut t = InMemoryTransport::new(cfg);
        t.send(b"hello").unwrap();
        assert_eq!(
            t.recv(),
            Err(ProtocolError::DeadlineExceeded {
                seq: 0,
                budget_us: 250,
                spent_us: 300,
            })
        );
        // Only the first retry crossed the wire request path; the second
        // was charged and aborted before retransmission.
        assert_eq!(t.stats().frames_retried, 1);
        assert_eq!(t.stats().retry_backoff_us, 300);
    }

    #[test]
    fn backoff_delays_are_exponential_up_to_the_cap() {
        let b = BackoffConfig {
            base_us: 100,
            max_us: 800,
            jitter: 0.0,
            budget_us: u64::MAX,
            seed: 0,
        };
        let delays: Vec<u64> = (1..=6).map(|a| b.raw_delay_us(a)).collect();
        assert_eq!(delays, vec![100, 200, 400, 800, 800, 800]);
        // Huge attempt counts must saturate, not overflow.
        assert_eq!(b.raw_delay_us(200), 800);
    }

    #[test]
    fn jittered_backoff_charges_are_reproducible_and_bounded() {
        let charge = |seed: u64| {
            let cfg = TransportConfig {
                faults: Some(FaultPlan::Random(FaultConfig {
                    seed: 9,
                    flip: 0.0,
                    truncate: 0.0,
                    drop: 0.5,
                    duplicate: 0.0,
                    reorder: 0.0,
                })),
                max_retries: 64,
                verify_checksums: true,
                backoff: BackoffConfig {
                    seed,
                    ..BackoffConfig::default()
                },
            };
            let (got, stats) = roundtrip(cfg);
            assert_eq!(got, payloads());
            stats.retry_backoff_us
        };
        // Same jitter seed ⇒ identical virtual schedule; the charge is
        // nonzero because half the transmissions are dropped.
        let a = charge(3);
        assert!(a > 0);
        assert_eq!(a, charge(3));
        // Different jitter seeds perturb the charges but nothing else.
        let differs = (0..8).any(|s| charge(s) != a);
        assert!(differs, "jitter should vary with its seed");
    }

    #[test]
    fn receiving_beyond_the_schedule_is_an_error() {
        let mut t = InMemoryTransport::clean();
        assert_eq!(t.recv(), Err(ProtocolError::UnknownFrame { seq: 0 }));
    }

    #[test]
    fn every_single_bit_flip_in_a_frame_is_detected() {
        let payload: Vec<u8> = (0..37u8).collect();
        let frame = encode_frame(5, &payload);
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut f = frame.clone();
                f[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&f, true).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
        assert_eq!(decode_frame(&frame, true).unwrap(), (5, &payload[..]));
    }

    #[test]
    fn shared_transport_crosses_threads_and_recovers() {
        let cfg = TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(7)));
        let mut tx = SharedTransport::with_timeout(cfg, Duration::from_secs(5));
        let mut rx = tx.clone();
        let sent = payloads();
        let expect = sent.clone();
        let sender = std::thread::spawn(move || {
            for p in &sent {
                tx.send(p).unwrap();
            }
        });
        let got: Vec<Vec<u8>> = (0..expect.len()).map(|_| rx.recv().unwrap()).collect();
        sender.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn shared_transport_recv_blocks_until_send() {
        let mut tx =
            SharedTransport::with_timeout(TransportConfig::default(), Duration::from_secs(5));
        let mut rx = tx.clone();
        let receiver = std::thread::spawn(move || rx.recv().unwrap());
        // The receiver parks on the condvar; a late send must wake it.
        std::thread::sleep(Duration::from_millis(20));
        tx.send(b"late").unwrap();
        assert_eq!(receiver.join().unwrap(), b"late");
    }

    #[test]
    fn shared_transport_times_out_typed() {
        let mut rx =
            SharedTransport::with_timeout(TransportConfig::default(), Duration::from_millis(30));
        assert_eq!(
            rx.recv(),
            Err(ProtocolError::RecvTimeout {
                seq: 0,
                waited_ms: 30
            })
        );
    }

    #[test]
    fn random_schedules_are_reproducible() {
        let run = |seed| {
            let cfg = TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(seed)));
            roundtrip(cfg)
        };
        assert_eq!(run(42), run(42));
        // different seeds produce different fault accounting eventually
        let differs = (0..16).any(|s| run(s).1 != run(s + 100).1);
        assert!(differs, "fault schedules should vary with the seed");
    }
}
