//! The workspace-level error taxonomy of the protocol stack.
//!
//! Three layers can fail on a real deployment, and each gets its own
//! type so callers can react precisely:
//!
//! * [`flash_he::serialize::WireError`] — bytes that do not decode into a
//!   well-formed polynomial/ciphertext (truncation, unreduced
//!   coefficients);
//! * [`ProtocolError`] — the framing/retransmission state machine gave up
//!   (a peer answered with garbage more often than the retry budget
//!   allows, or asked for a frame that never existed);
//! * [`flash_he::HeError`] — scheme-level validation (parameter
//!   mismatches on deserialized ciphertexts, noise-budget overflow).
//!
//! [`FlashError`] is the `?`-composable union the public protocol entry
//! points return.

use flash_he::serialize::WireError;
use flash_he::HeError;
use std::fmt;

/// Failures of the transport/framing state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The receiver asked for a sequence number the sender never queued —
    /// the peers disagree about the session's message schedule.
    UnknownFrame {
        /// The requested sequence number.
        seq: u32,
    },
    /// A frame stayed corrupt or missing after exhausting the
    /// retransmission budget.
    RetriesExhausted {
        /// The sequence number that could not be delivered.
        seq: u32,
        /// Retransmissions attempted before giving up.
        attempts: u32,
    },
    /// A blocking receive on a [`crate::transport::SharedTransport`] gave
    /// up: no sender queued the expected message within the deadline.
    RecvTimeout {
        /// The sequence number the receiver was waiting for.
        seq: u32,
        /// Milliseconds waited before giving up.
        waited_ms: u64,
    },
    /// The retransmission backoff schedule exhausted the frame's
    /// receive-deadline budget ([`crate::transport::BackoffConfig`])
    /// before a clean copy arrived.
    DeadlineExceeded {
        /// The sequence number that could not be delivered in budget.
        seq: u32,
        /// The configured budget, µs.
        budget_us: u64,
        /// Virtual backoff charged when the receiver gave up, µs.
        spent_us: u64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownFrame { seq } => {
                write!(f, "peer requested unknown frame seq {seq}")
            }
            ProtocolError::RetriesExhausted { seq, attempts } => {
                write!(
                    f,
                    "frame seq {seq} undeliverable after {attempts} retransmissions"
                )
            }
            ProtocolError::RecvTimeout { seq, waited_ms } => {
                write!(f, "no sender queued frame seq {seq} within {waited_ms} ms")
            }
            ProtocolError::DeadlineExceeded {
                seq,
                budget_us,
                spent_us,
            } => {
                write!(
                    f,
                    "frame seq {seq} exceeded its receive deadline ({spent_us} of {budget_us} µs backoff budget spent)"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Any failure of the hybrid-protocol stack: wire decoding, transport
/// recovery, or scheme-level validation (including noise overflow).
#[derive(Debug, Clone, PartialEq)]
pub enum FlashError {
    /// Bytes failed to decode into HE objects.
    Wire(WireError),
    /// The transport's recovery state machine failed.
    Protocol(ProtocolError),
    /// Scheme-level validation failed (parameter mismatch, noise
    /// overflow).
    He(HeError),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::Wire(e) => write!(f, "wire: {e}"),
            FlashError::Protocol(e) => write!(f, "protocol: {e}"),
            FlashError::He(e) => write!(f, "he: {e}"),
        }
    }
}

impl std::error::Error for FlashError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlashError::Wire(e) => Some(e),
            FlashError::Protocol(e) => Some(e),
            FlashError::He(e) => Some(e),
        }
    }
}

impl From<WireError> for FlashError {
    fn from(e: WireError) -> Self {
        FlashError::Wire(e)
    }
}

impl From<ProtocolError> for FlashError {
    fn from(e: ProtocolError) -> Self {
        FlashError::Protocol(e)
    }
}

impl From<HeError> for FlashError {
    fn from(e: HeError) -> Self {
        FlashError::He(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_chain_exposes_sources() {
        let e: FlashError = WireError::Truncated.into();
        let b: Box<dyn std::error::Error> = Box::new(e);
        assert!(b.source().is_some());
        let p: FlashError = ProtocolError::RetriesExhausted {
            seq: 3,
            attempts: 8,
        }
        .into();
        assert!(p.to_string().contains("seq 3"));
        let h: FlashError = HeError::NoiseOverflow {
            bound: 1.0,
            ceiling: 0.5,
        }
        .into();
        assert!(matches!(h, FlashError::He(HeError::NoiseOverflow { .. })));
    }
}
