//! Cost model of the 2PC *non-linear* layers (ReLU, truncation).
//!
//! The hybrid protocol's defining choice — the reason FLASH targets it —
//! is that activation functions run under OT-based 2PC instead of
//! homomorphic approximation. We do not implement oblivious transfer; the
//! accelerator never touches these layers. What the end-to-end accounting
//! (the paper's Figure 1 includes "communication latency") needs is their
//! *cost*: bytes and rounds per element, parameterized on published
//! Cheetah measurements.

pub mod exec;

/// Per-element communication of one non-linear primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimitiveCost {
    /// Bytes exchanged per element (both directions).
    pub bytes_per_elem: f64,
    /// Protocol rounds (latency-critical, amortized over a whole tensor).
    pub rounds: u32,
}

/// The Cheetah-style non-linear suite over `l`-bit shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonlinearModel {
    /// Share bit width `l`.
    pub share_bits: u32,
    /// Millionaire-protocol comparison (the core of DReLU).
    pub compare: PrimitiveCost,
    /// Multiplexer (B2A + select) after the comparison.
    pub select: PrimitiveCost,
    /// Probabilistic truncation (the re-quantization shift).
    pub truncation: PrimitiveCost,
}

impl NonlinearModel {
    /// Parameters matched to Cheetah's reported silent-OT costs for
    /// 32-ish-bit shares (order-of-magnitude faithful; exact constants
    /// depend on the OT backend).
    pub fn cheetah(share_bits: u32) -> Self {
        let l = share_bits as f64;
        Self {
            share_bits,
            // ~λ-free silent-OT comparison: a few bits per share bit.
            // The comparison tree needs ⌈log2 l⌉ rounds — `ilog2(l) + 1`
            // overcounts by one whenever `l` is a power of two, and a
            // zero-width share (a degenerate but reachable request) must
            // cost zero rounds instead of panicking in `ilog2`.
            compare: PrimitiveCost {
                bytes_per_elem: 4.0 * l / 8.0,
                rounds: ceil_log2(share_bits),
            },
            select: PrimitiveCost {
                bytes_per_elem: 2.0 * l / 8.0,
                rounds: 2,
            },
            truncation: PrimitiveCost {
                bytes_per_elem: 3.0 * l / 8.0,
                rounds: 2,
            },
        }
    }

    /// Full ReLU per element: comparison + select.
    pub fn relu(&self) -> PrimitiveCost {
        PrimitiveCost {
            bytes_per_elem: self.compare.bytes_per_elem + self.select.bytes_per_elem,
            rounds: self.compare.rounds + self.select.rounds,
        }
    }

    /// Communication for one activation tensor: ReLU + truncation over
    /// `elements`, in bytes.
    pub fn layer_bytes(&self, elements: u64) -> f64 {
        (self.relu().bytes_per_elem + self.truncation.bytes_per_elem) * elements as f64
    }

    /// Wall-clock estimate for one layer's non-linear stage given a link
    /// (`bandwidth_gbps`, `rtt_ms`): transfer time plus round latency.
    pub fn layer_latency_s(&self, elements: u64, bandwidth_gbps: f64, rtt_ms: f64) -> f64 {
        let bytes = self.layer_bytes(elements);
        let transfer = bytes * 8.0 / (bandwidth_gbps * 1e9);
        let rounds = (self.relu().rounds + self.truncation.rounds) as f64;
        transfer + rounds * rtt_ms / 1e3
    }
}

/// `⌈log2 v⌉`, with the zero-width guard `ceil_log2(0) = 0` (a
/// degenerate share width costs nothing rather than panicking).
pub(crate) fn ceil_log2(v: u32) -> u32 {
    if v <= 1 {
        0
    } else {
        32 - (v - 1).leading_zeros()
    }
}

/// Non-linear cost of a whole network: Σ over conv outputs.
pub fn network_nonlinear_bytes(
    model: &NonlinearModel,
    conv_output_elems: impl IntoIterator<Item = u64>,
) -> f64 {
    conv_output_elems
        .into_iter()
        .map(|e| model.layer_bytes(e))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_element_costs_scale_with_share_width() {
        let m16 = NonlinearModel::cheetah(16);
        let m32 = NonlinearModel::cheetah(32);
        assert!(m32.relu().bytes_per_elem > 1.5 * m16.relu().bytes_per_elem);
        assert!(m32.relu().rounds >= m16.relu().rounds);
    }

    #[test]
    fn layer_bytes_linear_in_elements() {
        let m = NonlinearModel::cheetah(21);
        assert!((m.layer_bytes(2000) - 2.0 * m.layer_bytes(1000)).abs() < 1e-9);
    }

    #[test]
    fn compare_rounds_are_ceil_log2() {
        // Power-of-two widths: exactly log2, not log2 + 1.
        assert_eq!(NonlinearModel::cheetah(16).compare.rounds, 4);
        assert_eq!(NonlinearModel::cheetah(32).compare.rounds, 5);
        // Non-powers round up.
        assert_eq!(NonlinearModel::cheetah(21).compare.rounds, 5);
        assert_eq!(NonlinearModel::cheetah(17).compare.rounds, 5);
        // The zero-width guard: no panic, no rounds, no bytes.
        let z = NonlinearModel::cheetah(0);
        assert_eq!(z.compare.rounds, 0);
        assert_eq!(z.compare.bytes_per_elem, 0.0);
    }

    #[test]
    fn latency_decomposes_into_transfer_and_rounds() {
        let m = NonlinearModel::cheetah(21);
        // 21-bit shares: a 5-level comparison tree (⌈log2 21⌉), then the
        // 2-round select and 2-round truncation.
        assert_eq!(m.relu().rounds + m.truncation.rounds, 5 + 2 + 2);
        // infinite bandwidth leaves only round latency
        let rounds_only = m.layer_latency_s(1_000_000, 1e9, 10.0);
        let expected_rounds = (m.relu().rounds + m.truncation.rounds) as f64 * 0.010;
        assert!((rounds_only - expected_rounds).abs() / expected_rounds < 0.01);
        // zero rtt leaves only transfer
        let transfer_only = m.layer_latency_s(1_000_000, 1.0, 0.0);
        assert!((transfer_only - m.layer_bytes(1_000_000) * 8.0 / 1e9).abs() < 1e-9);
    }

    #[test]
    fn resnet50_nonlinear_traffic_magnitude() {
        // ResNet-50 has ~9.4M post-conv activations; at 21-bit shares the
        // non-linear traffic lands in the hundreds of MB — consistent
        // with Cheetah's reported totals dominating communication.
        let m = NonlinearModel::cheetah(21);
        let net = flash_nn::resnet50_conv_layers();
        let elems = net
            .convs
            .iter()
            .map(|l| (l.m * l.out_h() * l.out_w()) as u64);
        let bytes = network_nonlinear_bytes(&m, elems);
        let mb = bytes / 1e6;
        assert!((50.0..2000.0).contains(&mb), "nonlinear traffic {mb} MB");
    }
}
