//! Executable secret-shared non-linear layers.
//!
//! [`super`] prices the 2PC non-linear suite; this module *runs* it. Every
//! primitive operates on additive shares over [`ShareRing`] and moves its
//! messages through the same framed [`InMemoryTransport`] the convolution
//! protocol uses, so checksum verification, fault injection and the
//! retransmission state machine apply unchanged: a corrupted session
//! either recovers bit-identically (the injector draws from its own RNG)
//! or fails with a typed [`FlashError`].
//!
//! # What is real and what is emulated
//!
//! The repository does not implement oblivious transfer (see the cost
//! model's module docs). The *execution* here is therefore an OT
//! emulation: message sizes, round structure, framing, recovery and the
//! data dependence of every output share on received wire bytes are real
//! — each party's share is computed from the payloads it pulls off its
//! link — while the payload blinding uses a correlation PRG shared by
//! both simulated parties (the stand-in for the correlated randomness a
//! silent-OT offline phase would deliver). Communication is padded to the
//! [`NonlinearModel`] budget per primitive, so measured wire traffic
//! cross-checks against the analytical model instead of diverging from
//! it.
//!
//! # Primitives
//!
//! * [`NonlinearSession::drelu`] — batched millionaire-style sign test:
//!   `⌈log2 l⌉` comparison-tree rounds over bit-decomposed low parts,
//!   producing XOR shares of `[x ≥ 0]` (so `drelu(0) = 1`, which is what
//!   makes the comparison trees below keep the *first* maximal element on
//!   ties).
//! * [`NonlinearSession::b2a`] — boolean→arithmetic share conversion.
//! * [`NonlinearSession::mux`] — multiplexer select `d·x` from boolean
//!   shares of `d` and arithmetic shares of `x` (B2A + select fused, as
//!   in Cheetah).
//! * [`NonlinearSession::requant`] — the re-quantization shift
//!   (truncation), bit-exact against [`Requantizer::apply`].
//! * [`NonlinearSession::maxpool`] / [`NonlinearSession::avgpool_global`]
//!   — pooling over shares; the average divides with
//!   [`div_round_half_away`], the same rule the plaintext reference uses.
//! * [`NonlinearSession::fc`] — the final classifier layer over shares
//!   against server-held weights.
//! * [`NonlinearSession::argmax`] — first-max tournament over logit
//!   shares, revealing only the winning index.

use super::NonlinearModel;
use crate::error::{FlashError, ProtocolError};
use crate::shares::ShareRing;
use crate::transport::{FaultPlan, InMemoryTransport, Transport, TransportConfig, TransportStats};
use flash_he::matvec::matvec_reference;
use flash_nn::quant::{div_round_half_away, Requantizer};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Uplink (client → server) fault-seed salt for the non-linear session.
const NL_UP_SALT: u64 = 0x6e6c_5f75_706c_696e;
/// Downlink (server → client) fault-seed salt.
const NL_DOWN_SALT: u64 = 0x6e6c_5f64_6f77_6e6c;

/// Cumulative accounting of one non-linear session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NonlinearStats {
    /// Elements pushed through the DReLU comparison (the `relu_elems`
    /// telemetry counter).
    pub relu_elems: u64,
    /// Comparison-tree rounds executed across all DReLU batches.
    pub compare_rounds: u64,
    /// Framed messages exchanged (both directions).
    pub messages: u64,
    /// Payload bytes exchanged (both directions, headers excluded).
    pub payload_bytes: u64,
    /// Framed bytes on the wire, headers/checksums/retransmissions
    /// included.
    pub wire_bytes: u64,
    /// Corrupt/duplicate/forged frames the transports rejected.
    pub faults_detected: u64,
    /// Retransmissions the transports requested.
    pub frames_retried: u64,
}

impl NonlinearStats {
    /// Field-wise difference against an earlier snapshot of the same
    /// session: the cost of whatever ran in between. Counters are
    /// monotone, so every field of `earlier` must be ≤ the corresponding
    /// field here.
    #[must_use]
    pub fn since(&self, earlier: &NonlinearStats) -> NonlinearStats {
        NonlinearStats {
            relu_elems: self.relu_elems - earlier.relu_elems,
            compare_rounds: self.compare_rounds - earlier.compare_rounds,
            messages: self.messages - earlier.messages,
            payload_bytes: self.payload_bytes - earlier.payload_bytes,
            wire_bytes: self.wire_bytes - earlier.wire_bytes,
            faults_detected: self.faults_detected - earlier.faults_detected,
            frames_retried: self.frames_retried - earlier.frames_retried,
        }
    }
}

/// One 2PC non-linear session: a pair of framed links plus the
/// correlation PRG, held across primitive invocations so a whole
/// network's non-linear stages share one wire state and one statistics
/// stream.
#[derive(Debug)]
pub struct NonlinearSession {
    ring: ShareRing,
    model: NonlinearModel,
    up: InMemoryTransport,
    down: InMemoryTransport,
    /// The shared correlation stream (the emulated silent-OT offline
    /// phase). Blinds every payload; both simulated parties derive the
    /// same pads from it.
    pads: StdRng,
    relu_elems: u64,
    compare_rounds: u64,
}

impl NonlinearSession {
    /// Opens a session over `ring` with the given wire configuration.
    /// Random fault plans are salted per direction so uplink and downlink
    /// draw independent schedules. `correlation_seed` seeds the shared
    /// pad stream (any fixed value reproduces the session bit-exactly).
    pub fn new(ring: ShareRing, transport: TransportConfig, correlation_seed: u64) -> Self {
        let direction = |mut cfg: TransportConfig, salt: u64| {
            if let Some(FaultPlan::Random(rc)) = &mut cfg.faults {
                rc.seed ^= salt;
            }
            cfg
        };
        Self {
            ring,
            model: NonlinearModel::cheetah(ring.bits()),
            up: InMemoryTransport::new(direction(transport.clone(), NL_UP_SALT)),
            down: InMemoryTransport::new(direction(transport, NL_DOWN_SALT)),
            pads: StdRng::seed_from_u64(correlation_seed),
            relu_elems: 0,
            compare_rounds: 0,
        }
    }

    /// The share ring.
    pub fn ring(&self) -> ShareRing {
        self.ring
    }

    /// The cost model this session's traffic is padded to.
    pub fn model(&self) -> NonlinearModel {
        self.model
    }

    /// Cumulative session statistics.
    pub fn stats(&self) -> NonlinearStats {
        let wire: TransportStats = self.up.stats().merge(self.down.stats());
        NonlinearStats {
            relu_elems: self.relu_elems,
            compare_rounds: self.compare_rounds,
            messages: wire.messages,
            payload_bytes: wire.payload_bytes,
            wire_bytes: wire.wire_bytes,
            faults_detected: wire.faults_detected,
            frames_retried: wire.frames_retried,
        }
    }

    /// Sends `payload` padded with correlation filler up to `target`
    /// bytes (real content always survives; the filler models the OT
    /// payload columns of a batched silent-OT extension).
    fn send_padded(
        link: &mut InMemoryTransport,
        pads: &mut StdRng,
        mut payload: Vec<u8>,
        target: usize,
    ) -> Result<(), ProtocolError> {
        while payload.len() < target {
            payload.push(pads.next_u32() as u8);
        }
        link.send(&payload)
    }

    fn send_up(&mut self, payload: Vec<u8>, target: usize) -> Result<(), ProtocolError> {
        Self::send_padded(&mut self.up, &mut self.pads, payload, target)
    }

    fn send_down(&mut self, payload: Vec<u8>, target: usize) -> Result<(), ProtocolError> {
        Self::send_padded(&mut self.down, &mut self.pads, payload, target)
    }

    /// Batched DReLU: XOR shares `(dc, ds)` of `[to_signed(x) ≥ 0]` for
    /// every shared element. Runs the `⌈log2 l⌉`-round comparison tree of
    /// the cost model; traffic is padded to its per-element budget.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] when the wire cannot recover a
    /// frame within its retry budget.
    pub fn drelu<R: Rng>(
        &mut self,
        xc: &[u64],
        xs: &[u64],
        rng: &mut R,
    ) -> Result<(Vec<u8>, Vec<u8>), FlashError> {
        assert_eq!(xc.len(), xs.len(), "share length mismatch");
        let n = xc.len();
        if n == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        let wire_before = self.wire_payload_bytes();
        let l = self.ring.bits();
        let low_bits = l - 1;
        let low_mask = if low_bits == 0 {
            0
        } else {
            (1u64 << low_bits) - 1
        };
        let rounds = self.model.compare.rounds.max(1) as usize;
        let budget = (self.model.compare.bytes_per_elem * n as f64 / 2.0).ceil() as usize;
        let per_round = budget.div_ceil(rounds);

        // --- Client: blind its msb bits and low-part digit table with
        // correlation pads and stream them across the tree rounds.
        let msb_c: Vec<u8> = xc.iter().map(|&v| ((v >> low_bits) & 1) as u8).collect();
        let low_c: Vec<u64> = xc.iter().map(|&v| v & low_mask).collect();
        let msb_pad: Vec<u8> = (0..n).map(|_| (self.pads.next_u32() & 1) as u8).collect();
        let low_pad: Vec<u64> = (0..n).map(|_| self.pads.next_u64() & low_mask).collect();
        let mut table = pack_bits(
            &msb_c
                .iter()
                .zip(&msb_pad)
                .map(|(&b, &p)| b ^ p)
                .collect::<Vec<u8>>(),
        );
        table.extend(pack_ring(
            &low_c
                .iter()
                .zip(&low_pad)
                .map(|(&v, &p)| v ^ p)
                .collect::<Vec<u64>>(),
            low_bits.max(1),
        ));
        let chunk = table.len().div_ceil(rounds);

        // --- The tree: each round one uplink chunk of the table and one
        // downlink mask vector; the XOR of the downlink masks is the
        // client's output share, so both shares are functions of
        // received bytes.
        let mut received_table = Vec::with_capacity(table.len());
        let mut dc = vec![0u8; n];
        let mut ds_mask = vec![0u8; n];
        for r in 0..rounds {
            let lo = (r * chunk).min(table.len());
            let hi = ((r + 1) * chunk).min(table.len());
            self.send_up(table[lo..hi].to_vec(), per_round)?;
            let up_bytes = self.up.recv()?;
            received_table.extend_from_slice(&up_bytes[..hi - lo]);

            let round_mask: Vec<u8> = (0..n).map(|_| (rng.next_u32() & 1) as u8).collect();
            for (m, &b) in ds_mask.iter_mut().zip(&round_mask) {
                *m ^= b;
            }
            self.send_down(pack_bits(&round_mask), per_round)?;
            let down_bytes = self.down.recv()?;
            let got = unpack_bits(&down_bytes, n);
            for (d, b) in dc.iter_mut().zip(got) {
                *d ^= b;
            }
        }
        self.compare_rounds += rounds as u64;
        self.relu_elems += n as u64;

        // --- Server: unblind the received table, run the comparison and
        // derive its XOR share from the mask stream it generated.
        let recv_msb = unpack_bits(&received_table[..n.div_ceil(8)], n);
        let recv_low = unpack_ring(&received_table[n.div_ceil(8)..], n, low_bits.max(1));
        let mut ds = vec![0u8; n];
        for i in 0..n {
            let m_c = recv_msb[i] ^ msb_pad[i];
            let l_c = recv_low[i] ^ low_pad[i];
            let m_s = ((xs[i] >> low_bits) & 1) as u8;
            let l_s = xs[i] & low_mask;
            let carry = if low_bits == 0 {
                0
            } else {
                u8::from(l_c + l_s >= (1u64 << low_bits))
            };
            let msb = m_c ^ m_s ^ carry;
            ds[i] = (1 ^ msb) ^ ds_mask[i];
        }

        flash_telemetry::counter!("twopc.relu_elems").add(n as u64);
        flash_telemetry::counter!("twopc.compare_rounds").add(rounds as u64);
        self.count_bytes(wire_before);
        Ok((dc, ds))
    }

    /// Boolean → arithmetic conversion: XOR shares of a bit become
    /// additive ring shares of the same bit.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] on unrecoverable wire failures.
    pub fn b2a<R: Rng>(
        &mut self,
        dc: &[u8],
        ds: &[u8],
        rng: &mut R,
    ) -> Result<(Vec<u64>, Vec<u64>), FlashError> {
        assert_eq!(dc.len(), ds.len(), "share length mismatch");
        let n = dc.len();
        if n == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        let wire_before = self.wire_payload_bytes();
        let l = self.ring.bits();
        // Half the select budget: B2A is one of the mux's two OT flows.
        let budget = (self.model.select.bytes_per_elem * n as f64 / 4.0).ceil() as usize;

        let bit_pad: Vec<u8> = (0..n).map(|_| (self.pads.next_u32() & 1) as u8).collect();
        let blinded: Vec<u8> = dc.iter().zip(&bit_pad).map(|(&b, &p)| b ^ p).collect();
        self.send_up(pack_bits(&blinded), budget.max(n.div_ceil(8)))?;
        let up_bytes = self.up.recv()?;
        let recv_dc = unpack_bits(&up_bytes, n);

        let mut as_server = Vec::with_capacity(n);
        let mut down_payload = Vec::with_capacity(n);
        let val_pad: Vec<u64> = (0..n)
            .map(|_| self.pads.next_u64() & (self.ring.modulus() - 1))
            .collect();
        for i in 0..n {
            let d = (recv_dc[i] ^ bit_pad[i] ^ ds[i]) as u64;
            let mask = rng.gen_range(0..self.ring.modulus());
            as_server.push(mask);
            down_payload.push(self.ring.add(self.ring.sub(d, mask), val_pad[i]));
        }
        let need = n * bytes_per_value(l);
        self.send_down(pack_ring(&down_payload, l), budget.max(need))?;
        let down_bytes = self.down.recv()?;
        let recv_vals = unpack_ring(&down_bytes[..need], n, l);
        let as_client: Vec<u64> = recv_vals
            .iter()
            .zip(&val_pad)
            .map(|(&v, &p)| self.ring.sub(v, p))
            .collect();

        self.count_bytes(wire_before);
        Ok((as_client, as_server))
    }

    /// Multiplexer select: from XOR shares of `d ∈ {0,1}` and additive
    /// shares of `x`, produces additive shares of `d · x` (B2A + select
    /// fused; the per-element traffic is the cost model's `select`
    /// budget).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] on unrecoverable wire failures.
    pub fn mux<R: Rng>(
        &mut self,
        dc: &[u8],
        ds: &[u8],
        xc: &[u64],
        xs: &[u64],
        rng: &mut R,
    ) -> Result<(Vec<u64>, Vec<u64>), FlashError> {
        assert_eq!(dc.len(), xc.len(), "bit/value length mismatch");
        assert_eq!(xc.len(), xs.len(), "share length mismatch");
        assert_eq!(dc.len(), ds.len(), "bit share length mismatch");
        let n = xc.len();
        if n == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        let wire_before = self.wire_payload_bytes();
        let l = self.ring.bits();
        let budget = (self.model.select.bytes_per_elem * n as f64 / 2.0).ceil() as usize;

        // --- Client: one uplink message carrying its blinded bit and
        // value shares.
        let bit_pad: Vec<u8> = (0..n).map(|_| (self.pads.next_u32() & 1) as u8).collect();
        let val_pad: Vec<u64> = (0..n)
            .map(|_| self.pads.next_u64() & (self.ring.modulus() - 1))
            .collect();
        let mut payload = pack_bits(
            &dc.iter()
                .zip(&bit_pad)
                .map(|(&b, &p)| b ^ p)
                .collect::<Vec<u8>>(),
        );
        payload.extend(pack_ring(
            &xc.iter()
                .zip(&val_pad)
                .map(|(&v, &p)| self.ring.add(v, p))
                .collect::<Vec<u64>>(),
            l,
        ));
        self.send_up(payload, budget)?;
        let up_bytes = self.up.recv()?;
        let bits_len = n.div_ceil(8);
        let recv_dc = unpack_bits(&up_bytes[..bits_len], n);
        let recv_xc = unpack_ring(&up_bytes[bits_len..bits_len + n * bytes_per_value(l)], n, l);

        // --- Server: select, re-share with a fresh mask, return the
        // client's blinded share.
        let out_pad: Vec<u64> = (0..n)
            .map(|_| self.pads.next_u64() & (self.ring.modulus() - 1))
            .collect();
        let mut ys = Vec::with_capacity(n);
        let mut down_payload = Vec::with_capacity(n);
        for i in 0..n {
            let d = recv_dc[i] ^ bit_pad[i] ^ ds[i];
            let x = self.ring.add(self.ring.sub(recv_xc[i], val_pad[i]), xs[i]);
            let y = if d == 1 { x } else { 0 };
            let mask = rng.gen_range(0..self.ring.modulus());
            ys.push(mask);
            down_payload.push(self.ring.add(self.ring.sub(y, mask), out_pad[i]));
        }
        self.send_down(pack_ring(&down_payload, l), budget)?;
        let down_bytes = self.down.recv()?;
        let recv_y = unpack_ring(&down_bytes[..n * bytes_per_value(l)], n, l);
        let yc: Vec<u64> = recv_y
            .iter()
            .zip(&out_pad)
            .map(|(&v, &p)| self.ring.sub(v, p))
            .collect();

        self.count_bytes(wire_before);
        Ok((yc, ys))
    }

    /// ReLU over additive shares: DReLU then mux.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] on unrecoverable wire failures.
    pub fn relu<R: Rng>(
        &mut self,
        xc: &[u64],
        xs: &[u64],
        rng: &mut R,
    ) -> Result<(Vec<u64>, Vec<u64>), FlashError> {
        let (dc, ds) = self.drelu(xc, xs, rng)?;
        self.mux(&dc, &ds, xc, xs, rng)
    }

    /// Probabilistic-truncation slot of the protocol: the
    /// re-quantization shift over shares, bit-exact against
    /// [`Requantizer::apply`] (shift rounding half away from zero, then
    /// clamp to the output width) so the private path and the plaintext
    /// reference can never drift by an LSB.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] on unrecoverable wire failures.
    pub fn requant<R: Rng>(
        &mut self,
        xc: &[u64],
        xs: &[u64],
        rq: Requantizer,
        rng: &mut R,
    ) -> Result<(Vec<u64>, Vec<u64>), FlashError> {
        self.reshare_map(xc, xs, self.model.truncation.bytes_per_elem, rng, |v| {
            rq.apply(v)
        })
    }

    /// ReLU followed by re-quantization — one conv layer's complete
    /// non-linear stage.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] on unrecoverable wire failures.
    pub fn relu_requant<R: Rng>(
        &mut self,
        xc: &[u64],
        xs: &[u64],
        rq: Requantizer,
        rng: &mut R,
    ) -> Result<(Vec<u64>, Vec<u64>), FlashError> {
        let (yc, ys) = self.relu(xc, xs, rng)?;
        self.requant(&yc, &ys, rq, rng)
    }

    /// Max pooling over shares: a left-biased pairwise tournament of
    /// DReLU + mux per tree level, batched over every window. Ties keep
    /// the earlier (first) element — `drelu(a − b) = 1` when `a = b`.
    /// Out-of-bounds (padded) positions contribute the after-ReLU
    /// identity 0.
    ///
    /// Comparison semantics assume window differences stay inside
    /// `[-2^{l-1}, 2^{l-1})`, the same range contract the share ring's
    /// signed reading has.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] on unrecoverable wire failures.
    ///
    /// # Panics
    ///
    /// Panics when the share length does not match `c·h·w`.
    #[allow(clippy::too_many_arguments)]
    pub fn maxpool<R: Rng>(
        &mut self,
        xc: &[u64],
        xs: &[u64],
        (c, h, w): (usize, usize, usize),
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Result<(Vec<u64>, Vec<u64>), FlashError> {
        assert_eq!(xc.len(), c * h * w, "input size mismatch");
        assert_eq!(xc.len(), xs.len(), "share length mismatch");
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;
        // One candidate list per window, earliest-first so the
        // tournament's tie-breaking matches the first-max reference.
        let mut windows: Vec<Vec<(u64, u64)>> = Vec::with_capacity(c * oh * ow);
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut cand = Vec::with_capacity(k * k);
                    for dy in 0..k {
                        for dx in 0..k {
                            let iy = (oy * stride + dy) as isize - pad as isize;
                            let ix = (ox * stride + dx) as isize - pad as isize;
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                let idx = (ch * h + iy as usize) * w + ix as usize;
                                cand.push((xc[idx], xs[idx]));
                            } else {
                                cand.push((0, 0));
                            }
                        }
                    }
                    windows.push(cand);
                }
            }
        }
        while windows.iter().any(|c| c.len() > 1) {
            // Batch every pair of every window into one DReLU/mux pass.
            let mut ac = Vec::new();
            let mut asrv = Vec::new();
            let mut bc = Vec::new();
            let mut bsrv = Vec::new();
            for cand in &windows {
                for pair in cand.chunks(2) {
                    if let [a, b] = pair {
                        ac.push(a.0);
                        asrv.push(a.1);
                        bc.push(b.0);
                        bsrv.push(b.1);
                    }
                }
            }
            let diff_c: Vec<u64> = ac
                .iter()
                .zip(&bc)
                .map(|(&a, &b)| self.ring.sub(a, b))
                .collect();
            let diff_s: Vec<u64> = asrv
                .iter()
                .zip(&bsrv)
                .map(|(&a, &b)| self.ring.sub(a, b))
                .collect();
            let (dc, ds) = self.drelu(&diff_c, &diff_s, rng)?;
            let (mc, ms) = self.mux(&dc, &ds, &diff_c, &diff_s, rng)?;
            // max(a, b) = b + d·(a − b), share-wise.
            let mut cursor = 0;
            for cand in windows.iter_mut() {
                let mut next = Vec::with_capacity(cand.len().div_ceil(2));
                for pair in cand.chunks(2) {
                    match pair {
                        [_, b] => {
                            next.push((
                                self.ring.add(b.0, mc[cursor]),
                                self.ring.add(b.1, ms[cursor]),
                            ));
                            cursor += 1;
                        }
                        [only] => next.push(*only),
                        _ => unreachable!("chunks(2)"),
                    }
                }
                *cand = next;
            }
        }
        let mut yc = Vec::with_capacity(windows.len());
        let mut ys = Vec::with_capacity(windows.len());
        for cand in &windows {
            yc.push(cand[0].0);
            ys.push(cand[0].1);
        }
        Ok((yc, ys))
    }

    /// Global average pooling over shares: per-channel sums are local
    /// (linear), the division re-shares interactively and rounds with
    /// [`div_round_half_away`] — the identical rule the requantizer and
    /// the fixed plaintext reference use.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] on unrecoverable wire failures.
    ///
    /// # Panics
    ///
    /// Panics when the share length does not match `channels·spatial` or
    /// `spatial` is zero.
    pub fn avgpool_global<R: Rng>(
        &mut self,
        xc: &[u64],
        xs: &[u64],
        channels: usize,
        spatial: usize,
        rng: &mut R,
    ) -> Result<(Vec<u64>, Vec<u64>), FlashError> {
        assert!(spatial > 0, "empty pooling window");
        assert_eq!(xc.len(), channels * spatial, "input size mismatch");
        assert_eq!(xc.len(), xs.len(), "share length mismatch");
        let sum = |shares: &[u64]| -> Vec<u64> {
            (0..channels)
                .map(|c| {
                    shares[c * spatial..(c + 1) * spatial]
                        .iter()
                        .fold(0u64, |acc, &v| self.ring.add(acc, v))
                })
                .collect()
        };
        let (sc, ss) = (sum(xc), sum(xs));
        self.reshare_map(&sc, &ss, self.model.truncation.bytes_per_elem, rng, |v| {
            div_round_half_away(v, spatial as i64)
        })
    }

    /// The final fully-connected layer over shares: the server holds the
    /// row-major `no×ni` weight matrix; the products re-share through the
    /// wire and the output stays secret-shared for the argmax.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] on unrecoverable wire failures.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn fc<R: Rng>(
        &mut self,
        xc: &[u64],
        xs: &[u64],
        weights: &[i64],
        ni: usize,
        no: usize,
        rng: &mut R,
    ) -> Result<(Vec<u64>, Vec<u64>), FlashError> {
        assert_eq!(xc.len(), ni, "input dimension mismatch");
        assert_eq!(xc.len(), xs.len(), "share length mismatch");
        assert_eq!(weights.len(), ni * no, "matrix size mismatch");
        let wire_before = self.wire_payload_bytes();
        let l = self.ring.bits();

        let val_pad: Vec<u64> = (0..ni)
            .map(|_| self.pads.next_u64() & (self.ring.modulus() - 1))
            .collect();
        let blinded: Vec<u64> = xc
            .iter()
            .zip(&val_pad)
            .map(|(&v, &p)| self.ring.add(v, p))
            .collect();
        self.send_up(pack_ring(&blinded, l), ni * bytes_per_value(l))?;
        let up_bytes = self.up.recv()?;
        let recv_xc = unpack_ring(&up_bytes[..ni * bytes_per_value(l)], ni, l);

        let x_signed: Vec<i64> = recv_xc
            .iter()
            .zip(&val_pad)
            .zip(xs)
            .map(|((&v, &p), &s)| self.ring.to_signed(self.ring.add(self.ring.sub(v, p), s)))
            .collect();
        let y = matvec_reference(weights, &x_signed, ni, no);
        let out_pad: Vec<u64> = (0..no)
            .map(|_| self.pads.next_u64() & (self.ring.modulus() - 1))
            .collect();
        let mut ys = Vec::with_capacity(no);
        let mut down_payload = Vec::with_capacity(no);
        for (i, &v) in y.iter().enumerate() {
            let mask = rng.gen_range(0..self.ring.modulus());
            ys.push(mask);
            down_payload.push(
                self.ring
                    .add(self.ring.sub(self.ring.reduce(v), mask), out_pad[i]),
            );
        }
        self.send_down(pack_ring(&down_payload, l), no * bytes_per_value(l))?;
        let down_bytes = self.down.recv()?;
        let recv_y = unpack_ring(&down_bytes[..no * bytes_per_value(l)], no, l);
        let yc: Vec<u64> = recv_y
            .iter()
            .zip(&out_pad)
            .map(|(&v, &p)| self.ring.sub(v, p))
            .collect();

        self.count_bytes(wire_before);
        Ok((yc, ys))
    }

    /// Secure argmax over logit shares: a left-biased tournament carrying
    /// `(value, index)` share pairs, so on tied logits the *first*
    /// maximal index wins — the semantics the fixed plaintext reference
    /// pins. Only the winning index is revealed.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::Protocol`] on unrecoverable wire failures.
    ///
    /// # Panics
    ///
    /// Panics on empty logits.
    pub fn argmax<R: Rng>(
        &mut self,
        xc: &[u64],
        xs: &[u64],
        rng: &mut R,
    ) -> Result<usize, FlashError> {
        assert!(!xc.is_empty(), "non-empty logits");
        assert_eq!(xc.len(), xs.len(), "share length mismatch");
        // (value client/server, index client/server)
        let mut cand: Vec<(u64, u64, u64, u64)> = xc
            .iter()
            .zip(xs)
            .enumerate()
            .map(|(i, (&c, &s))| (c, s, self.ring.reduce(i as i64), 0))
            .collect();
        while cand.len() > 1 {
            let mut diff_vc = Vec::new();
            let mut diff_vs = Vec::new();
            let mut diff_ic = Vec::new();
            let mut diff_is = Vec::new();
            for pair in cand.chunks(2) {
                if let [a, b] = pair {
                    diff_vc.push(self.ring.sub(a.0, b.0));
                    diff_vs.push(self.ring.sub(a.1, b.1));
                    diff_ic.push(self.ring.sub(a.2, b.2));
                    diff_is.push(self.ring.sub(a.3, b.3));
                }
            }
            let (dc, ds) = self.drelu(&diff_vc, &diff_vs, rng)?;
            let (vmc, vms) = self.mux(&dc, &ds, &diff_vc, &diff_vs, rng)?;
            let (imc, ims) = self.mux(&dc, &ds, &diff_ic, &diff_is, rng)?;
            let mut next = Vec::with_capacity(cand.len().div_ceil(2));
            let mut cursor = 0;
            for pair in cand.chunks(2) {
                match pair {
                    [_, b] => {
                        next.push((
                            self.ring.add(b.0, vmc[cursor]),
                            self.ring.add(b.1, vms[cursor]),
                            self.ring.add(b.2, imc[cursor]),
                            self.ring.add(b.3, ims[cursor]),
                        ));
                        cursor += 1;
                    }
                    [only] => next.push(*only),
                    _ => unreachable!("chunks(2)"),
                }
            }
            cand = next;
        }
        // Reveal the index: each side contributes its share over its
        // link; the reconstruction reads both off the wire.
        let wire_before = self.wire_payload_bytes();
        let l = self.ring.bits();
        let winner = cand[0];
        self.send_up(pack_ring(&[winner.2], l), bytes_per_value(l))?;
        let up_bytes = self.up.recv()?;
        let idx_c = unpack_ring(&up_bytes[..bytes_per_value(l)], 1, l)[0];
        self.send_down(pack_ring(&[winner.3], l), bytes_per_value(l))?;
        let down_bytes = self.down.recv()?;
        let idx_s = unpack_ring(&down_bytes[..bytes_per_value(l)], 1, l)[0];
        self.count_bytes(wire_before);
        let idx = self.ring.to_signed(self.ring.add(idx_c, idx_s));
        assert!(
            idx >= 0 && (idx as usize) < xc.len(),
            "revealed argmax index {idx} out of range"
        );
        Ok(idx as usize)
    }

    /// Interactive element-wise map: the client's blinded shares go up,
    /// the server reconstructs, applies `f` to the signed value, and
    /// re-shares with fresh masks. The skeleton of the truncation-style
    /// primitives (requant, average-pool division); traffic is padded to
    /// `bytes_per_elem · n`.
    fn reshare_map<R: Rng>(
        &mut self,
        xc: &[u64],
        xs: &[u64],
        bytes_per_elem: f64,
        rng: &mut R,
        f: impl Fn(i64) -> i64,
    ) -> Result<(Vec<u64>, Vec<u64>), FlashError> {
        assert_eq!(xc.len(), xs.len(), "share length mismatch");
        let n = xc.len();
        if n == 0 {
            return Ok((Vec::new(), Vec::new()));
        }
        let wire_before = self.wire_payload_bytes();
        let l = self.ring.bits();
        let budget = (bytes_per_elem * n as f64 / 2.0).ceil() as usize;
        let need = n * bytes_per_value(l);

        let val_pad: Vec<u64> = (0..n)
            .map(|_| self.pads.next_u64() & (self.ring.modulus() - 1))
            .collect();
        let blinded: Vec<u64> = xc
            .iter()
            .zip(&val_pad)
            .map(|(&v, &p)| self.ring.add(v, p))
            .collect();
        self.send_up(pack_ring(&blinded, l), budget.max(need))?;
        let up_bytes = self.up.recv()?;
        let recv_xc = unpack_ring(&up_bytes[..need], n, l);

        let out_pad: Vec<u64> = (0..n)
            .map(|_| self.pads.next_u64() & (self.ring.modulus() - 1))
            .collect();
        let mut ys = Vec::with_capacity(n);
        let mut down_payload = Vec::with_capacity(n);
        for i in 0..n {
            let x = self
                .ring
                .to_signed(self.ring.add(self.ring.sub(recv_xc[i], val_pad[i]), xs[i]));
            let y = self.ring.reduce(f(x));
            let mask = rng.gen_range(0..self.ring.modulus());
            ys.push(mask);
            down_payload.push(self.ring.add(self.ring.sub(y, mask), out_pad[i]));
        }
        self.send_down(pack_ring(&down_payload, l), budget.max(need))?;
        let down_bytes = self.down.recv()?;
        let recv_y = unpack_ring(&down_bytes[..need], n, l);
        let yc: Vec<u64> = recv_y
            .iter()
            .zip(&out_pad)
            .map(|(&v, &p)| self.ring.sub(v, p))
            .collect();

        self.count_bytes(wire_before);
        Ok((yc, ys))
    }

    fn wire_payload_bytes(&self) -> u64 {
        self.up.stats().payload_bytes + self.down.stats().payload_bytes
    }

    fn count_bytes(&self, wire_before: u64) {
        let delta = self.wire_payload_bytes() - wire_before;
        flash_telemetry::counter!("twopc.nonlinear_bytes").add(delta);
    }
}

/// Bytes needed for one `l`-bit ring value (byte-aligned packing).
fn bytes_per_value(l: u32) -> usize {
    (l as usize).div_ceil(8)
}

/// Packs ring values into little-endian `⌈l/8⌉`-byte slots.
fn pack_ring(vals: &[u64], l: u32) -> Vec<u8> {
    let bpv = bytes_per_value(l);
    let mut out = Vec::with_capacity(vals.len() * bpv);
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes()[..bpv]);
    }
    out
}

/// Unpacks `n` ring values; the slice must hold at least `n·⌈l/8⌉` bytes.
fn unpack_ring(bytes: &[u8], n: usize, l: u32) -> Vec<u64> {
    let bpv = bytes_per_value(l);
    assert!(bytes.len() >= n * bpv, "ring payload too short");
    (0..n)
        .map(|i| {
            let mut buf = [0u8; 8];
            buf[..bpv].copy_from_slice(&bytes[i * bpv..(i + 1) * bpv]);
            u64::from_le_bytes(buf)
        })
        .collect()
}

/// Packs bits (`0`/`1` bytes) eight per byte, LSB first.
fn pack_bits(bits: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        out[i / 8] |= (b & 1) << (i % 8);
    }
    out
}

/// Unpacks `n` bits; the slice must hold at least `⌈n/8⌉` bytes.
fn unpack_bits(bytes: &[u8], n: usize) -> Vec<u8> {
    assert!(bytes.len() >= n.div_ceil(8), "bit payload too short");
    (0..n).map(|i| (bytes[i / 8] >> (i % 8)) & 1).collect()
}

/// The plaintext max-pooling reference the shared execution is checked
/// against (same window/padding rule: pad positions contribute 0, the
/// after-ReLU identity). Lives in `flash_nn` so plaintext network
/// references can use it without depending on this crate.
pub use flash_nn::layers::maxpool_reference;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{FaultConfig, FaultOp};

    fn session(l: u32) -> NonlinearSession {
        NonlinearSession::new(ShareRing::new(l), TransportConfig::default(), 7)
    }

    fn share(ring: ShareRing, x: &[i64], rng: &mut StdRng) -> (Vec<u64>, Vec<u64>) {
        ring.share_vec(x, rng)
    }

    #[test]
    fn drelu_matches_sign_reference() {
        let mut s = session(16);
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<i64> = vec![0, 1, -1, 5, -5, 32767, -32768, 1234, -4321];
        let (xc, xs) = share(s.ring(), &x, &mut rng);
        let (dc, ds) = s.drelu(&xc, &xs, &mut rng).unwrap();
        for (i, &v) in x.iter().enumerate() {
            assert_eq!((dc[i] ^ ds[i]) as i64, i64::from(v >= 0), "x={v}");
        }
        let st = s.stats();
        assert_eq!(st.relu_elems, x.len() as u64);
        assert_eq!(st.compare_rounds, 4); // ceil(log2 16)
        assert!(st.payload_bytes > 0 && st.wire_bytes > st.payload_bytes);
    }

    #[test]
    fn relu_matches_reference() {
        let mut s = session(21);
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<i64> = (-40..40).map(|v| v * 13).collect();
        let (xc, xs) = share(s.ring(), &x, &mut rng);
        let (yc, ys) = s.relu(&xc, &xs, &mut rng).unwrap();
        let got = s.ring().reconstruct_vec(&yc, &ys);
        let want: Vec<i64> = x.iter().map(|&v| v.max(0)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn requant_matches_requantizer_apply() {
        let mut s = session(21);
        let mut rng = StdRng::seed_from_u64(3);
        let rq = Requantizer {
            shift: 5,
            out_bits: 4,
        };
        let x: Vec<i64> = (-300..300).map(|v| v * 7).collect();
        let (xc, xs) = share(s.ring(), &x, &mut rng);
        let (yc, ys) = s.requant(&xc, &xs, rq, &mut rng).unwrap();
        let got = s.ring().reconstruct_vec(&yc, &ys);
        let want: Vec<i64> = x.iter().map(|&v| rq.apply(v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn b2a_converts_bit_shares() {
        let mut s = session(16);
        let mut rng = StdRng::seed_from_u64(4);
        let dc = vec![0u8, 1, 1, 0, 1];
        let ds = vec![0u8, 1, 0, 1, 0];
        let (ac, asrv) = s.b2a(&dc, &ds, &mut rng).unwrap();
        let got = s.ring().reconstruct_vec(&ac, &asrv);
        let want: Vec<i64> = dc.iter().zip(&ds).map(|(&c, &d)| (c ^ d) as i64).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn maxpool_first_max_on_ties() {
        let mut s = session(16);
        let mut rng = StdRng::seed_from_u64(5);
        // one channel, 2x2 window over 2x2 input: all equal -> max is the
        // value; mixed signs select the max
        let x = vec![4, 4, 4, 4, -3, 7, 7, -9];
        let (xc, xs) = share(s.ring(), &x, &mut rng);
        let (yc, ys) = s.maxpool(&xc, &xs, (2, 2, 2), 2, 2, 0, &mut rng).unwrap();
        let got = s.ring().reconstruct_vec(&yc, &ys);
        assert_eq!(got, maxpool_reference(&x, (2, 2, 2), 2, 2, 0));
        assert_eq!(got, vec![4, 7]);
    }

    #[test]
    fn avgpool_rounds_like_requantizer() {
        let mut s = session(16);
        let mut rng = StdRng::seed_from_u64(6);
        // channel sums 7 and -7 over 2 positions: nearest-away gives 4, -4
        let x = vec![3, 4, -3, -4];
        let (xc, xs) = share(s.ring(), &x, &mut rng);
        let (yc, ys) = s.avgpool_global(&xc, &xs, 2, 2, &mut rng).unwrap();
        let got = s.ring().reconstruct_vec(&yc, &ys);
        assert_eq!(got, vec![4, -4]);
    }

    #[test]
    fn fc_matches_matvec_reference() {
        let mut s = session(21);
        let mut rng = StdRng::seed_from_u64(7);
        let (ni, no) = (6, 3);
        let x: Vec<i64> = (0..ni as i64).map(|i| i * 3 - 7).collect();
        let w: Vec<i64> = (0..(ni * no) as i64).map(|i| (i % 5) - 2).collect();
        let (xc, xs) = share(s.ring(), &x, &mut rng);
        let (yc, ys) = s.fc(&xc, &xs, &w, ni, no, &mut rng).unwrap();
        let got = s.ring().reconstruct_vec(&yc, &ys);
        assert_eq!(got, matvec_reference(&w, &x, ni, no));
    }

    #[test]
    fn argmax_first_max_semantics() {
        let mut s = session(16);
        let mut rng = StdRng::seed_from_u64(8);
        for (logits, want) in [
            (vec![3i64, 5, 5, 1], 1usize),
            (vec![7, 7, 7], 0),
            (vec![-9, -2, -2], 1),
            (vec![10], 0),
            (vec![1, 2, 3, 4, 5, 4], 4),
        ] {
            let (xc, xs) = share(s.ring(), &logits, &mut rng);
            let got = s.argmax(&xc, &xs, &mut rng).unwrap();
            assert_eq!(got, want, "logits {logits:?}");
        }
    }

    #[test]
    fn traffic_tracks_cost_model() {
        // The per-layer ReLU + truncation traffic must stay within 2x of
        // the analytical budget (it is padded toward it).
        let mut s = session(21);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 4096usize;
        let x: Vec<i64> = (0..n as i64).map(|i| (i % 63) - 31).collect();
        let (xc, xs) = share(s.ring(), &x, &mut rng);
        let rq = Requantizer {
            shift: 2,
            out_bits: 4,
        };
        s.relu_requant(&xc, &xs, rq, &mut rng).unwrap();
        let measured = s.stats().payload_bytes as f64;
        let predicted = s.model().layer_bytes(n as u64);
        let ratio = measured / predicted;
        assert!(
            (0.5..2.0).contains(&ratio),
            "measured {measured} vs predicted {predicted} (ratio {ratio})"
        );
    }

    #[test]
    fn scripted_fault_recovers_bit_identically() {
        let ring = ShareRing::new(16);
        let mut rng = StdRng::seed_from_u64(10);
        let x: Vec<i64> = (-20..20).collect();
        let (xc, xs) = ring.share_vec(&x, &mut rng);

        let mut clean = NonlinearSession::new(ring, TransportConfig::default(), 3);
        let mut r1 = StdRng::seed_from_u64(11);
        let (c_yc, c_ys) = clean.relu(&xc, &xs, &mut r1).unwrap();

        let mut faulty = NonlinearSession::new(
            ring,
            TransportConfig::faulty(FaultPlan::Scripted(vec![FaultOp::FlipBit {
                byte: 9,
                bit: 3,
            }])),
            3,
        );
        let mut r2 = StdRng::seed_from_u64(11);
        let (f_yc, f_ys) = faulty.relu(&xc, &xs, &mut r2).unwrap();
        assert_eq!((c_yc, c_ys), (f_yc, f_ys), "recovery must be bit-identical");
        let st = faulty.stats();
        assert!(st.faults_detected >= 1 && st.frames_retried >= 1);
    }

    #[test]
    fn chaos_session_recovers_or_fails_typed() {
        let ring = ShareRing::new(16);
        let mut rng = StdRng::seed_from_u64(12);
        let x: Vec<i64> = (-50..50).collect();
        let (xc, xs) = ring.share_vec(&x, &mut rng);
        let mut clean = NonlinearSession::new(ring, TransportConfig::default(), 5);
        let mut rc = StdRng::seed_from_u64(13);
        let clean_out = clean.relu(&xc, &xs, &mut rc).unwrap();
        for seed in 0..20 {
            let mut s = NonlinearSession::new(
                ring,
                TransportConfig::faulty(FaultPlan::Random(FaultConfig::moderate(seed))),
                5,
            );
            let mut r = StdRng::seed_from_u64(13);
            match s.relu(&xc, &xs, &mut r) {
                Ok(out) => assert_eq!(out, clean_out, "seed {seed}"),
                Err(FlashError::Protocol(_)) => {}
                Err(e) => panic!("untyped failure under chaos: {e:?}"),
            }
        }
    }
}
