//! The convolution protocol over multi-limb (RNS) BFV.
//!
//! Identical flow to [`crate::protocol::ConvProtocol`], but the ciphertext
//! modulus is a product of primes — the configuration larger plaintext
//! rings (deeper accumulations, transformer-scale layers) need. All limb
//! arithmetic is exact NTT; FLASH's approximate weight transform applies
//! per limb in hardware, but the functional reference here stays exact.

use crate::shares::ShareRing;
use flash_he::encoding::{ConvEncoder, ConvShape};
use flash_he::poly::Poly;
use flash_he::rns::{RnsCiphertext, RnsParams, RnsSecretKey};
use rand::Rng;

/// One convolution layer's RNS protocol instance.
#[derive(Debug, Clone)]
pub struct RnsConvProtocol {
    params: RnsParams,
    encoder: ConvEncoder,
    ring: ShareRing,
}

impl RnsConvProtocol {
    /// Plans a protocol run for a pre-padded stride-1 convolution.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a power of two ≥ 4.
    pub fn new(params: RnsParams, shape: ConvShape) -> Self {
        let l = params.t.trailing_zeros();
        assert!(params.t.is_power_of_two() && l >= 2, "t must be 2^l");
        let encoder = ConvEncoder::new(shape, params.n);
        Self {
            ring: ShareRing::new(l),
            params,
            encoder,
        }
    }

    /// The share ring.
    pub fn ring(&self) -> ShareRing {
        self.ring
    }

    /// The tiling plan.
    pub fn encoder(&self) -> &ConvEncoder {
        &self.encoder
    }

    /// Runs the protocol; returns the reconstructed signed outputs (the
    /// share split/merge is identical to the single-limb protocol, so the
    /// RNS variant exposes the end result directly).
    ///
    /// # Panics
    ///
    /// Panics on size mismatches.
    pub fn run<R: Rng>(
        &self,
        sk: &RnsSecretKey,
        x: &[i64],
        weights: &[i64],
        rng: &mut R,
    ) -> Vec<i64> {
        let shape = *self.encoder.shape();
        assert_eq!(x.len(), shape.input_len(), "activation size mismatch");
        assert_eq!(
            weights.len(),
            shape.m * shape.kernel_len(),
            "weight size mismatch"
        );
        let p = &self.params;
        let enc = &self.encoder;

        let (x_client, x_server) = self.ring.share_vec(x, rng);
        let xc: Vec<i64> = x_client.iter().map(|&v| v as i64).collect();
        let xs: Vec<i64> = x_server.iter().map(|&v| v as i64).collect();

        let cts: Vec<RnsCiphertext> = enc
            .encode_activation(&xc)
            .iter()
            .map(|tile| sk.encrypt(&Poly::from_signed(tile, p.t), rng))
            .collect();
        let cts_sum: Vec<RnsCiphertext> = cts
            .iter()
            .zip(enc.encode_activation(&xs))
            .map(|(ct, tile)| ct.add_plain(&Poly::from_signed(&tile, p.t), p))
            .collect();

        let bands = enc.bands();
        let out_len = shape.output_len();
        let mut y_client = vec![0u64; out_len];
        let mut y_server = vec![0u64; out_len];
        for oc in 0..shape.m {
            let w_polys = enc.encode_weight(
                &weights[oc * shape.kernel_len()..][..shape.kernel_len()],
                oc,
            );
            for b in 0..bands {
                let mut acc: Option<RnsCiphertext> = None;
                for (g, w_poly) in w_polys.iter().enumerate() {
                    let term = cts_sum[g * bands + b].mul_plain_signed(&w_poly[b], p);
                    acc = Some(match acc {
                        None => term,
                        Some(a) => a.add_ct(&term),
                    });
                }
                let acc = acc.expect("at least one channel group");
                let mask_vals: Vec<u64> = (0..p.n).map(|_| rng.gen_range(0..p.t)).collect();
                let mask = Poly::from_coeffs(mask_vals, p.t);
                let masked = acc.sub_plain(&mask, p);

                let mask_signed: Vec<i64> = mask.coeffs().iter().map(|&v| v as i64).collect();
                let mut tmp = vec![0i64; out_len];
                enc.decode_band(&mask_signed, b, oc, &mut tmp);
                merge_band(enc, &tmp, b, oc, &mut y_server);

                let dec = sk.decrypt(&masked);
                let dec_signed: Vec<i64> = dec.coeffs().iter().map(|&v| v as i64).collect();
                let mut tmp = vec![0i64; out_len];
                enc.decode_band(&dec_signed, b, oc, &mut tmp);
                merge_band(enc, &tmp, b, oc, &mut y_client);
            }
        }
        self.ring.reconstruct_vec(&y_client, &y_server)
    }
}

fn merge_band(enc: &ConvEncoder, vals: &[i64], b: usize, oc: usize, out: &mut [u64]) {
    let shape = enc.shape();
    let spec = enc.band_spec(b);
    for pp in 0..spec.rows_out {
        for q in 0..shape.out_w() {
            let idx = (oc * shape.out_h() + spec.out_row0 + pp) * shape.out_w() + q;
            out[idx] = vals[idx] as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::expected_conv_mod;
    use rand::SeedableRng;

    #[test]
    fn rns_protocol_matches_cleartext_conv() {
        let p = RnsParams::test_double();
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sk = RnsSecretKey::generate(&p, &mut rng);
        let proto = RnsConvProtocol::new(p, shape);
        use rand::Rng;
        let x: Vec<i64> = (0..shape.input_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        let got = proto.run(&sk, &x, &w, &mut rng);
        assert_eq!(got, expected_conv_mod(&x, &w, &shape, proto.ring()));
    }

    #[test]
    fn rns_protocol_survives_dense_weights() {
        // The configuration single-limb parameters cannot support (see
        // flash-he's rns tests): fully dense ±8 kernels over many
        // channels.
        let p = RnsParams::new(256, 36, 2, 1 << 16, 3.2);
        let shape = ConvShape {
            c: 4,
            h: 5,
            w: 5,
            m: 1,
            k: 5,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sk = RnsSecretKey::generate(&p, &mut rng);
        let proto = RnsConvProtocol::new(p, shape);
        use rand::Rng;
        let x: Vec<i64> = (0..shape.input_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        let got = proto.run(&sk, &x, &w, &mut rng);
        assert_eq!(got, expected_conv_mod(&x, &w, &shape, proto.ring()));
    }

    #[test]
    fn rns_protocol_banded_geometry() {
        let p = RnsParams::new(256, 36, 2, 1 << 16, 3.2);
        let shape = ConvShape {
            c: 1,
            h: 24,
            w: 24,
            m: 1,
            k: 3,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sk = RnsSecretKey::generate(&p, &mut rng);
        let proto = RnsConvProtocol::new(p, shape);
        assert!(proto.encoder().bands() > 1);
        use rand::Rng;
        let x: Vec<i64> = (0..shape.input_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        let w: Vec<i64> = (0..shape.kernel_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        let got = proto.run(&sk, &x, &w, &mut rng);
        assert_eq!(got, expected_conv_mod(&x, &w, &shape, proto.ring()));
    }
}
