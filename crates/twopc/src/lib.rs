//! The hybrid HE/2PC private-inference protocol (Cheetah-style).
//!
//! Linear layers run under homomorphic encryption over *arithmetic secret
//! shares*: an `l`-bit activation `x` is split into `{x}^C + {x}^S ≡ x
//! (mod 2^l)` between client and server. For one convolution the client
//! sends `Enc({x}^C)`; the server computes
//! `(Enc({x}^C) ⊞ {x}^S) ⊠ w ⊟ s` with a fresh random mask `s` and returns
//! it; after decryption the client holds `{y}^C = y − s` while the server
//! keeps `{y}^S = s` — the output is again secret-shared and feeds the 2PC
//! non-linear layer.
//!
//! * [`shares`] — the additive share ring `Z_{2^l}`.
//! * [`protocol`] — client/server simulation of homomorphic convolution,
//!   including tiling, group accumulation and communication accounting.

pub mod error;
pub mod matvec;
pub mod nonlinear;
pub mod protocol;
pub mod rns_protocol;
pub mod shares;
pub mod transport;

pub use error::{FlashError, ProtocolError};
pub use matvec::MatVecProtocol;
pub use nonlinear::exec::{maxpool_reference, NonlinearSession, NonlinearStats};
pub use nonlinear::NonlinearModel;
pub use protocol::{
    conv_band_noise_bound, conv_band_plan, expected_conv_mod, ConvProtocol, ProtocolStats,
};
pub use shares::ShareRing;
pub use transport::{
    BackoffConfig, FaultConfig, FaultOp, FaultPlan, InMemoryTransport, SharedTransport, Transport,
    TransportConfig, TransportStats,
};
