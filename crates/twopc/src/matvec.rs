//! The hybrid-protocol fully-connected (matrix–vector) layer.
//!
//! Same flow as the convolution protocol: the client sends encrypted
//! input-vector shares, the server folds in its share, multiplies by the
//! weight-matrix polynomials, masks, and returns; the output is again
//! secret-shared.

use crate::protocol::ProtocolStats;
use crate::shares::ShareRing;
use flash_he::matvec::MatVecEncoder;
use flash_he::{Ciphertext, HeParams, Poly, PolyMulBackend, SecretKey};
use rand::Rng;

/// One FC layer's protocol instance.
#[derive(Debug, Clone)]
pub struct MatVecProtocol {
    params: HeParams,
    encoder: MatVecEncoder,
    backend: PolyMulBackend,
    ring: ShareRing,
}

impl MatVecProtocol {
    /// Plans `y = W·x` with `W ∈ Z^{no×ni}`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a power of two ≥ 4.
    pub fn new(params: HeParams, ni: usize, no: usize, backend: PolyMulBackend) -> Self {
        let l = params.t.trailing_zeros();
        assert!(params.t.is_power_of_two() && l >= 2, "t must be 2^l");
        let encoder = MatVecEncoder::new(ni, no, params.n);
        Self {
            ring: ShareRing::new(l),
            params,
            encoder,
            backend,
        }
    }

    /// The tiling plan.
    pub fn encoder(&self) -> &MatVecEncoder {
        &self.encoder
    }

    /// The share ring.
    pub fn ring(&self) -> ShareRing {
        self.ring
    }

    /// Runs the protocol; `x` is the cleartext input (shared internally),
    /// `w` the server's row-major weight matrix. Returns `(client share,
    /// server share)` of `y` plus the wire statistics.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn run<R: Rng>(
        &self,
        sk: &SecretKey,
        x: &[i64],
        w: &[i64],
        rng: &mut R,
    ) -> ((Vec<u64>, Vec<u64>), ProtocolStats) {
        let enc = &self.encoder;
        let p = &self.params;
        assert_eq!(x.len(), enc.input_dim(), "input dimension mismatch");
        assert_eq!(
            w.len(),
            enc.input_dim() * enc.output_dim(),
            "matrix size mismatch"
        );
        let mut stats = ProtocolStats::default();

        let (x_client, x_server) = self.ring.share_vec(x, rng);
        let xc: Vec<i64> = x_client.iter().map(|&v| v as i64).collect();
        let xs: Vec<i64> = x_server.iter().map(|&v| v as i64).collect();

        // Client: encrypt its share per column chunk.
        let cts: Vec<Ciphertext> = enc
            .encode_vector(&xc)
            .iter()
            .map(|poly| sk.encrypt(&Poly::from_signed(poly, p.t), rng))
            .collect();
        stats.ciphertexts_up = cts.len();
        stats.upload_bytes = cts.iter().map(|c| c.byte_size()).sum();

        // Server: fold in its share.
        let cts_sum: Vec<Ciphertext> = cts
            .iter()
            .zip(enc.encode_vector(&xs))
            .map(|(ct, tile)| ct.add_plain(&Poly::from_signed(&tile, p.t), p))
            .collect();
        stats.activation_transforms = 2 * cts_sum.len();

        let no = enc.output_dim();
        let mut y_client = vec![0u64; no];
        let mut y_server = vec![0u64; no];
        for rb in 0..enc.row_blocks() {
            // Fused multiply-accumulate: one resident accumulator per row
            // block, one weight transform per chunk, no intermediate
            // ciphertexts.
            let mut acc = Ciphertext::zero(p.n, p.q);
            for (cc, ct) in cts_sum.iter().enumerate() {
                let wp = enc.encode_matrix(w, rb, cc);
                ct.mul_plain_signed_acc(&wp, p, &self.backend, &mut acc);
                stats.weight_transforms += 1;
                stats.pointwise_muls += p.n as u64;
            }
            let mask_vals: Vec<u64> = (0..p.n).map(|_| rng.gen_range(0..p.t)).collect();
            let mask = Poly::from_coeffs(mask_vals, p.t);
            let masked = acc.sub_plain(&mask, p);
            stats.inverse_transforms += 2;
            stats.ciphertexts_down += 1;
            stats.download_bytes += masked.byte_size();

            // server share from the mask, client share from decryption
            let mask_signed: Vec<i64> = mask.coeffs().iter().map(|&v| v as i64).collect();
            let mut tmp = vec![0i64; no];
            enc.decode_block(&mask_signed, rb, &mut tmp);
            merge_block(enc, rb, &tmp, &mut y_server);
            let dec = sk.decrypt(&masked);
            let dec_signed: Vec<i64> = dec.coeffs().iter().map(|&v| v as i64).collect();
            let mut tmp = vec![0i64; no];
            enc.decode_block(&dec_signed, rb, &mut tmp);
            merge_block(enc, rb, &tmp, &mut y_client);
        }
        ((y_client, y_server), stats)
    }

    /// Reconstructs the signed output from the two shares.
    pub fn reconstruct(&self, client: &[u64], server: &[u64]) -> Vec<i64> {
        self.ring.reconstruct_vec(client, server)
    }
}

fn merge_block(enc: &MatVecEncoder, rb: usize, vals: &[i64], out: &mut [u64]) {
    let row0 = rb * enc.rows_per_block();
    let rows = enc.rows_per_block().min(enc.output_dim() - row0);
    for i in 0..rows {
        out[row0 + i] = vals[row0 + i] as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_he::matvec::matvec_reference;
    use rand::SeedableRng;

    fn run_case(ni: usize, no: usize, backend: PolyMulBackend, seed: u64) {
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = MatVecProtocol::new(params, ni, no, backend);
        let x: Vec<i64> = (0..ni).map(|i| ((i as i64 * 13) % 15) - 7).collect();
        let w: Vec<i64> = (0..ni * no).map(|i| ((i as i64 * 7) % 15) - 7).collect();
        let ((yc, ys), stats) = proto.run(&sk, &x, &w, &mut rng);
        let got = proto.reconstruct(&yc, &ys);
        let ring = proto.ring();
        let want: Vec<i64> = matvec_reference(&w, &x, ni, no)
            .iter()
            .map(|&v| ring.to_signed(ring.reduce(v)))
            .collect();
        assert_eq!(got, want, "ni={ni} no={no}");
        assert_eq!(stats.ciphertexts_up, proto.encoder().col_chunks());
        assert_eq!(stats.ciphertexts_down, proto.encoder().row_blocks());
    }

    #[test]
    fn single_block_fc() {
        run_case(16, 8, PolyMulBackend::Ntt, 1);
    }

    #[test]
    fn row_blocked_fc() {
        run_case(64, 12, PolyMulBackend::FftF64, 2);
    }

    #[test]
    fn column_chunked_fc() {
        run_case(300, 3, PolyMulBackend::Ntt, 3);
    }

    #[test]
    fn fc_on_approximate_backend() {
        let params = HeParams::test_256();
        let mut cfg = flash_fft::ApproxFftConfig::uniform(
            params.n,
            flash_math::fixed::FxpFormat::new(18, 34),
            30,
        );
        cfg.max_shift = 30;
        run_case(32, 10, PolyMulBackend::approx(cfg), 4);
    }
}
