//! The hybrid-protocol fully-connected (matrix–vector) layer.
//!
//! Same flow as the convolution protocol: the client sends encrypted
//! input-vector shares over a real [`Transport`], the server receives,
//! validates, folds in its share, multiplies by the weight-matrix
//! polynomials, masks, and returns the serialized responses; the output
//! is again secret-shared. (No noise guard here: the FC layer has no
//! approximate-backend band decomposition — the bound composition lives
//! in the convolution protocol where FLASH's approximate transforms
//! run.)

use crate::error::FlashError;
use crate::protocol::ProtocolStats;
use crate::shares::ShareRing;
use crate::transport::{InMemoryTransport, Transport, TransportConfig};
use flash_he::matvec::MatVecEncoder;
use flash_he::{serialize, Ciphertext, HeParams, Poly, PolyMulBackend, SecretKey};
use rand::Rng;

/// `(client share, server share)` of the FC output vector.
pub type MatVecShares = (Vec<u64>, Vec<u64>);

/// One FC layer's protocol instance.
#[derive(Debug, Clone)]
pub struct MatVecProtocol {
    params: HeParams,
    encoder: MatVecEncoder,
    backend: PolyMulBackend,
    ring: ShareRing,
    transport: TransportConfig,
}

impl MatVecProtocol {
    /// Plans `y = W·x` with `W ∈ Z^{no×ni}`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a power of two ≥ 4.
    pub fn new(params: HeParams, ni: usize, no: usize, backend: PolyMulBackend) -> Self {
        let l = params.t.trailing_zeros();
        assert!(params.t.is_power_of_two() && l >= 2, "t must be 2^l");
        let encoder = MatVecEncoder::new(ni, no, params.n);
        Self {
            ring: ShareRing::new(l),
            params,
            encoder,
            backend,
            transport: TransportConfig::default(),
        }
    }

    /// Sets the wire configuration for both transport directions.
    pub fn with_transport_config(mut self, cfg: TransportConfig) -> Self {
        self.transport = cfg;
        self
    }

    /// The tiling plan.
    pub fn encoder(&self) -> &MatVecEncoder {
        &self.encoder
    }

    /// The share ring.
    pub fn ring(&self) -> ShareRing {
        self.ring
    }

    /// Runs the protocol; `x` is the cleartext input (shared internally),
    /// `w` the server's row-major weight matrix. Returns `(client share,
    /// server share)` of `y` plus the wire statistics.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError`] when a wire payload cannot be recovered
    /// within the transport's retry budget or fails deserialization or
    /// validation.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn run<R: Rng>(
        &self,
        sk: &SecretKey,
        x: &[i64],
        w: &[i64],
        rng: &mut R,
    ) -> Result<(MatVecShares, ProtocolStats), FlashError> {
        let enc = &self.encoder;
        let p = &self.params;
        assert_eq!(x.len(), enc.input_dim(), "input dimension mismatch");
        assert_eq!(
            w.len(),
            enc.input_dim() * enc.output_dim(),
            "matrix size mismatch"
        );
        let mut stats = ProtocolStats::default();
        let mut up = InMemoryTransport::new(self.transport.clone());
        let mut down = InMemoryTransport::new(self.transport.clone());

        let (x_client, x_server) = self.ring.share_vec(x, rng);
        let xc: Vec<i64> = x_client.iter().map(|&v| v as i64).collect();
        let xs: Vec<i64> = x_server.iter().map(|&v| v as i64).collect();

        // Client: encrypt its share per column chunk and upload the
        // serialized ciphertexts.
        let chunks = enc.encode_vector(&xc);
        stats.ciphertexts_up = chunks.len();
        for poly in &chunks {
            let ct = sk.encrypt(&Poly::from_signed(poly, p.t), rng);
            up.send(&serialize::ciphertext_to_bytes(&ct))?;
        }

        // Server: receive, validate, fold in its share.
        let cts_sum: Vec<Ciphertext> = enc
            .encode_vector(&xs)
            .iter()
            .map(|tile| {
                let bytes = up.recv()?;
                let ct = serialize::ciphertext_from_bytes(&bytes, p.n, p.q)?;
                ct.validate_for(p)?;
                Ok(ct.add_plain(&Poly::from_signed(tile, p.t), p))
            })
            .collect::<Result<_, FlashError>>()?;
        stats.upload_bytes = up.stats().payload_bytes as usize;
        stats.activation_transforms = 2 * cts_sum.len();

        let no = enc.output_dim();
        let mut y_client = vec![0u64; no];
        let mut y_server = vec![0u64; no];
        for rb in 0..enc.row_blocks() {
            // Fused multiply-accumulate: one resident accumulator per row
            // block, one weight transform per chunk, no intermediate
            // ciphertexts.
            let mut acc = Ciphertext::zero(p.n, p.q);
            for (cc, ct) in cts_sum.iter().enumerate() {
                let wp = enc.encode_matrix(w, rb, cc);
                ct.mul_plain_signed_acc(&wp, p, &self.backend, &mut acc);
                stats.weight_transforms += 1;
                stats.pointwise_muls += p.n as u64;
            }
            let mask_vals: Vec<u64> = (0..p.n).map(|_| rng.gen_range(0..p.t)).collect();
            let mask = Poly::from_coeffs(mask_vals, p.t);
            let masked = acc.sub_plain(&mask, p);
            stats.inverse_transforms += 2;
            stats.ciphertexts_down += 1;

            // server share from the mask; the response goes down the wire
            let mask_signed: Vec<i64> = mask.coeffs().iter().map(|&v| v as i64).collect();
            let mut tmp = vec![0i64; no];
            enc.decode_block(&mask_signed, rb, &mut tmp);
            merge_block(enc, rb, &tmp, &mut y_server);
            down.send(&serialize::ciphertext_to_bytes(&masked))?;

            // client: receive, validate, decrypt, decode its share
            let bytes = down.recv()?;
            let response = serialize::ciphertext_from_bytes(&bytes, p.n, p.q)?;
            response.validate_for(p)?;
            let dec = sk.try_decrypt(&response)?;
            let dec_signed: Vec<i64> = dec.coeffs().iter().map(|&v| v as i64).collect();
            let mut tmp = vec![0i64; no];
            enc.decode_block(&dec_signed, rb, &mut tmp);
            merge_block(enc, rb, &tmp, &mut y_client);
        }
        stats.download_bytes = down.stats().payload_bytes as usize;
        let wire = up.stats().merge(down.stats());
        stats.upload_wire_bytes = up.stats().wire_bytes as usize;
        stats.download_wire_bytes = down.stats().wire_bytes as usize;
        stats.faults_detected = wire.faults_detected as usize;
        stats.frames_retried = wire.frames_retried as usize;
        Ok(((y_client, y_server), stats))
    }

    /// Reconstructs the signed output from the two shares.
    pub fn reconstruct(&self, client: &[u64], server: &[u64]) -> Vec<i64> {
        self.ring.reconstruct_vec(client, server)
    }
}

fn merge_block(enc: &MatVecEncoder, rb: usize, vals: &[i64], out: &mut [u64]) {
    let row0 = rb * enc.rows_per_block();
    let rows = enc.rows_per_block().min(enc.output_dim() - row0);
    for i in 0..rows {
        out[row0 + i] = vals[row0 + i] as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{FaultOp, FaultPlan};
    use flash_he::matvec::matvec_reference;
    use rand::SeedableRng;

    fn run_case(ni: usize, no: usize, backend: PolyMulBackend, seed: u64) {
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = MatVecProtocol::new(params, ni, no, backend);
        let x: Vec<i64> = (0..ni).map(|i| ((i as i64 * 13) % 15) - 7).collect();
        let w: Vec<i64> = (0..ni * no).map(|i| ((i as i64 * 7) % 15) - 7).collect();
        let ((yc, ys), stats) = proto.run(&sk, &x, &w, &mut rng).unwrap();
        let got = proto.reconstruct(&yc, &ys);
        let ring = proto.ring();
        let want: Vec<i64> = matvec_reference(&w, &x, ni, no)
            .iter()
            .map(|&v| ring.to_signed(ring.reduce(v)))
            .collect();
        assert_eq!(got, want, "ni={ni} no={no}");
        assert_eq!(stats.ciphertexts_up, proto.encoder().col_chunks());
        assert_eq!(stats.ciphertexts_down, proto.encoder().row_blocks());
        assert!(stats.upload_wire_bytes > stats.upload_bytes);
        assert!(stats.download_wire_bytes > stats.download_bytes);
    }

    #[test]
    fn single_block_fc() {
        run_case(16, 8, PolyMulBackend::Ntt, 1);
    }

    #[test]
    fn row_blocked_fc() {
        run_case(64, 12, PolyMulBackend::FftF64, 2);
    }

    #[test]
    fn column_chunked_fc() {
        run_case(300, 3, PolyMulBackend::Ntt, 3);
    }

    #[test]
    fn fc_on_approximate_backend() {
        let params = HeParams::test_256();
        let mut cfg = flash_fft::ApproxFftConfig::uniform(
            params.n,
            flash_math::fixed::FxpFormat::new(18, 34),
            30,
        );
        cfg.max_shift = 30;
        run_case(32, 10, PolyMulBackend::approx(cfg), 4);
    }

    #[test]
    fn fc_recovers_from_faulty_wire() {
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = SecretKey::generate(&params, &mut rng);
        let (ni, no) = (16, 8);
        let x: Vec<i64> = (0..ni).map(|i| (i as i64 % 5) - 2).collect();
        let w: Vec<i64> = (0..ni * no).map(|i| (i as i64 % 5) - 2).collect();

        let clean = MatVecProtocol::new(params.clone(), ni, no, PolyMulBackend::Ntt);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(3);
        let (clean_out, _) = clean.run(&sk, &x, &w, &mut r1).unwrap();

        // Corrupt the first frame of each direction; the retransmission
        // delivers the clean copy, so the result is bit-identical.
        let faulty = MatVecProtocol::new(params, ni, no, PolyMulBackend::Ntt)
            .with_transport_config(TransportConfig::faulty(FaultPlan::Scripted(vec![
                FaultOp::FlipBit { byte: 33, bit: 5 },
            ])));
        let mut r2 = rand::rngs::StdRng::seed_from_u64(3);
        let (faulty_out, stats) = faulty.run(&sk, &x, &w, &mut r2).unwrap();
        assert_eq!(
            faulty_out, clean_out,
            "recovered run must be bit-identical to the clean run"
        );
        assert!(stats.faults_detected >= 2 && stats.frames_retried >= 2);
    }
}
