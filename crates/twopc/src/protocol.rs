//! Client/server simulation of one homomorphic convolution.
//!
//! Both roles run in-process, but every ciphertext crosses a real
//! [`Transport`]: the client serializes with [`flash_he::serialize`],
//! frames go over an in-memory wire (optionally through a fault
//! injector), and the server deserializes and validates before touching
//! the payload — so [`ProtocolStats`] counts bytes that were actually
//! sent, and every input that crossed the wire is handled with typed
//! errors instead of panics. The plaintext modulus `t = 2^l` of the BFV
//! parameters doubles as the secret-share ring, so homomorphic sums over
//! `Z_t` are exactly the share arithmetic of the 2PC layers around the
//! convolution.
//!
//! # Noise guard
//!
//! Before computing each `(oc, band)` response the server composes the
//! worst-case decryption-noise bound of the exact pipeline (fresh
//! encryption → share fold → per-group weight multiply → mask →
//! truncation) and, on the approximate-FFT backend, adds the analytical
//! error bound of the transform ([`ApproxErrorModel`]). If the total
//! exceeds `margin × q/(2t)` the band transparently falls back to an
//! exact path dispatched on the ring family — the NTT backend on a prime
//! modulus ([`ProtocolStats::ntt_fallbacks`]), the wrapping schoolbook on
//! a power-of-two modulus ([`ProtocolStats::pow2_fallbacks`]); if even
//! the exact-path bound overflows the ceiling the run fails with
//! [`HeError::NoiseOverflow`] instead of decrypting garbage.
//!
//! [`ApproxErrorModel`]: flash_he::backend::ApproxErrorModel
//! [`HeError::NoiseOverflow`]: flash_he::HeError

use crate::error::FlashError;
use crate::shares::ShareRing;
use crate::transport::{FaultPlan, InMemoryTransport, Transport, TransportConfig};
use flash_fft::C64_SCRATCH;
use flash_he::backend::{weight_residues_into, BandAccumulator};
use flash_he::encoding::{ConvEncoder, ConvShape};
use flash_he::noise::NoiseBound;
use flash_he::truncate::TruncatedCiphertext;
use flash_he::{serialize, Ciphertext, HeParams, Poly, PolyMulBackend, SecretKey};
use flash_runtime::U64_SCRATCH;
use flash_sparse::{SparsePlan, SparsityPattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Seed salts decorrelating the two directions of one random fault plan.
const UP_LINK_SALT: u64 = 0x7570_6c69_6e6b; // "uplink"
const DOWN_LINK_SALT: u64 = 0x646f_776e_6c69_6e6b; // "downlink"

/// Communication and workload accounting of one protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolStats {
    /// Bytes of ciphertext sent client → server.
    pub upload_bytes: usize,
    /// Bytes of ciphertext sent server → client.
    pub download_bytes: usize,
    /// Ciphertexts the client uploads (`groups × bands`).
    pub ciphertexts_up: usize,
    /// Ciphertexts the server returns (`bands × out-channels`).
    pub ciphertexts_down: usize,
    /// Forward transforms of *weight* polynomials (the FLASH target).
    pub weight_transforms: usize,
    /// How many of those weight transforms ran on a compiled sparse µop
    /// tape instead of the dense butterfly network.
    pub sparse_weight_transforms: usize,
    /// Forward transforms of activation (ciphertext) polynomials — two
    /// per uploaded ciphertext (`c0` and `c1`).
    pub activation_transforms: usize,
    /// Inverse transforms — two per returned ciphertext.
    pub inverse_transforms: usize,
    /// Point-wise spectrum multiplications (complex/modular MACs).
    pub pointwise_muls: u64,
    /// Framed bytes client → server, headers/checksums/retransmissions
    /// included (`≥ upload_bytes`; the delta is the honest wire
    /// overhead).
    pub upload_wire_bytes: usize,
    /// Framed bytes server → client (same accounting).
    pub download_wire_bytes: usize,
    /// Corrupt/duplicate/forged frames the transports rejected.
    pub faults_detected: usize,
    /// Retransmissions the transports requested.
    pub frames_retried: usize,
    /// `(oc, band)` jobs the noise guard re-ran on the exact NTT backend
    /// (prime-modulus rings).
    pub ntt_fallbacks: usize,
    /// `(oc, band)` jobs the noise guard re-ran on the exact wrapping
    /// schoolbook (power-of-two-modulus rings).
    pub pow2_fallbacks: usize,
}

/// The secret-shared output of one convolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvOutputShares {
    /// Client share, `m·out_h·out_w` row-major over `Z_{2^l}`.
    pub client: Vec<u64>,
    /// Server share, same layout.
    pub server: Vec<u64>,
}

/// One convolution layer's protocol instance.
#[derive(Debug, Clone)]
pub struct ConvProtocol {
    params: HeParams,
    encoder: ConvEncoder,
    backend: PolyMulBackend,
    ring: ShareRing,
    /// Response truncation `(d0, d1)` bits, if enabled (Cheetah's
    /// download compression).
    truncation: Option<(u32, u32)>,
    /// Route weight transforms through compiled sparse plans when the
    /// encoding's pattern makes it worthwhile (FLASH's sparse dataflow).
    sparse_weights: bool,
    /// Wire configuration applied to both directions (fault plans get
    /// per-direction seed salts).
    transport: TransportConfig,
    /// Noise-guard threshold as a fraction of the decryption ceiling
    /// `q/(2t)`; bands whose composed bound crosses it fall back to the
    /// exact NTT backend.
    noise_margin: f64,
}

impl ConvProtocol {
    /// Plans a protocol run for a (pre-padded, stride-1) convolution.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a power of two ≥ 4 (share/plaintext rings must
    /// coincide), or if the backend and the ring family disagree (the
    /// `Pow2` backend needs a power-of-two ciphertext modulus; the exact
    /// NTT backend needs a prime one).
    pub fn new(params: HeParams, shape: ConvShape, backend: PolyMulBackend) -> Self {
        let l = params.t.trailing_zeros();
        assert!(params.t.is_power_of_two() && l >= 2, "t must be 2^l");
        match backend {
            PolyMulBackend::Pow2 => assert!(
                params.is_pow2(),
                "Pow2 backend requires a power-of-two ciphertext modulus"
            ),
            PolyMulBackend::Ntt => assert!(
                !params.is_pow2(),
                "exact NTT backend requires a prime ciphertext modulus"
            ),
            _ => {}
        }
        let encoder = ConvEncoder::new(shape, params.n);
        Self {
            ring: ShareRing::new(l),
            params,
            encoder,
            backend,
            truncation: None,
            sparse_weights: true,
            transport: TransportConfig::default(),
            noise_margin: flash_runtime::noise_margin(),
        }
    }

    /// Enables response-ciphertext truncation: the server drops `d0` low
    /// bits of `c0` and `d1` of `c1` before download. The caller is
    /// responsible for choosing a noise-safe pair (see
    /// [`flash_he::truncate::safe_truncation`]).
    pub fn with_truncation(mut self, d0: u32, d1: u32) -> Self {
        self.truncation = Some((d0, d1));
        self
    }

    /// Enables or disables the compiled sparse weight-transform path
    /// (on by default). With `false` every weight transform runs densely;
    /// outputs are identical either way — the switch exists for A/B
    /// benchmarking and regression bisection.
    pub fn with_sparse_weights(mut self, enabled: bool) -> Self {
        self.sparse_weights = enabled;
        self
    }

    /// Sets the wire configuration for both transport directions —
    /// retry budget, checksum enforcement, and (for testing) a fault
    /// plan. Random fault plans are salted per direction so uplink and
    /// downlink do not replay the same schedule.
    pub fn with_transport_config(mut self, cfg: TransportConfig) -> Self {
        self.transport = cfg;
        self
    }

    /// Overrides the noise-guard margin (default:
    /// [`flash_runtime::noise_margin`], i.e. `FLASH_NOISE_MARGIN` or
    /// 1.0). A margin of `0.0` forces the exact-NTT fallback for every
    /// band of an approximate backend — a deterministic test hook.
    pub fn with_noise_margin(mut self, margin: f64) -> Self {
        self.noise_margin = margin;
        self
    }

    /// The transport configuration for one direction: the shared config
    /// with the fault-plan seed salted so the two links draw independent
    /// schedules.
    fn direction_config(&self, salt: u64) -> TransportConfig {
        let mut cfg = self.transport.clone();
        if let Some(FaultPlan::Random(rc)) = &mut cfg.faults {
            rc.seed ^= salt;
        }
        cfg
    }

    /// Composes the worst-case decryption-noise bound of one `(oc, band)`
    /// job on the *exact* pipeline — fresh encryption, server share fold,
    /// one weight multiply per channel group accumulated into the
    /// response, the output mask, and the agreed truncation — plus the
    /// total `Σw²` of the band's weights (the input to the approximate
    /// backend's error model).
    fn band_noise_bound(&self, w_polys: &[Vec<Vec<i64>>], b: usize) -> (NoiseBound, f64) {
        conv_band_noise_bound(&self.params, w_polys, b, self.truncation)
    }

    /// Resolves the compiled weight-transform plan for band `b`, or
    /// `None` when the dense path should run: sparse path disabled, NTT
    /// backend (modular spectra, not FFT), or a pattern too dense to win
    /// ([`SparsePlan::worthwhile`]).
    fn band_plan(&self, b: usize) -> Option<Arc<SparsePlan>> {
        if !self.sparse_weights || matches!(self.backend, PolyMulBackend::Ntt) {
            return None;
        }
        let plan = conv_band_plan(&self.encoder, self.params.n, b);
        plan.worthwhile().then_some(plan)
    }

    /// The share ring `Z_{2^l}`.
    pub fn ring(&self) -> ShareRing {
        self.ring
    }

    /// The tiling plan.
    pub fn encoder(&self) -> &ConvEncoder {
        &self.encoder
    }

    /// Runs the protocol on a secret-shared activation.
    ///
    /// `x` is the *cleartext* activation (signed, already padded); it is
    /// split into shares internally so tests can verify reconstruction.
    /// `weights` is the full `m×c×k×k` kernel (server-side plaintext).
    ///
    /// # Errors
    ///
    /// Returns [`FlashError`] when a wire payload cannot be recovered
    /// within the transport's retry budget, fails deserialization or
    /// scheme-level validation, or when the composed noise bound of a
    /// band overflows the decryption ceiling even on the exact backend.
    ///
    /// # Panics
    ///
    /// Panics on size mismatches with the planned shape (caller-side
    /// contract violations, not wire inputs).
    pub fn run<R: Rng>(
        &self,
        sk: &SecretKey,
        x: &[i64],
        weights: &[i64],
        rng: &mut R,
    ) -> Result<(ConvOutputShares, ProtocolStats), FlashError> {
        assert_eq!(
            x.len(),
            self.encoder.shape().input_len(),
            "activation size mismatch"
        );
        // --- Secret-share the activation (normally pre-existing state).
        let (x_client, x_server) = self.ring.share_vec(x, rng);
        self.run_shared(sk, &x_client, &x_server, weights, rng)
    }

    /// Runs the protocol on an *already secret-shared* activation — the
    /// entry point of a full private-inference pipeline, where each conv
    /// layer's input arrives as the share pair the previous non-linear
    /// stage produced. Shares are ring elements of [`Self::ring`]; the
    /// output is again secret-shared.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics on size mismatches with the planned shape.
    pub fn run_shared<R: Rng>(
        &self,
        sk: &SecretKey,
        x_client: &[u64],
        x_server: &[u64],
        weights: &[i64],
        rng: &mut R,
    ) -> Result<(ConvOutputShares, ProtocolStats), FlashError> {
        let shape = *self.encoder.shape();
        assert_eq!(x_client.len(), shape.input_len(), "share size mismatch");
        assert_eq!(x_client.len(), x_server.len(), "share length mismatch");
        assert_eq!(
            weights.len(),
            shape.m * shape.kernel_len(),
            "weight size mismatch"
        );
        let p = &self.params;
        let mut stats = ProtocolStats::default();
        let mut up = InMemoryTransport::new(self.direction_config(UP_LINK_SALT));
        let mut down = InMemoryTransport::new(self.direction_config(DOWN_LINK_SALT));

        let xc_signed: Vec<i64> = x_client.iter().map(|&v| v as i64).collect();
        let xs_signed: Vec<i64> = x_server.iter().map(|&v| v as i64).collect();

        // --- Client: encode its share per tile, encrypt, and upload the
        // serialized ciphertexts.
        let enc = &self.encoder;
        let encode_span = flash_telemetry::span!("hconv.encode");
        let client_tiles = enc.encode_activation(&xc_signed);
        let cts: Vec<Ciphertext> = client_tiles
            .iter()
            .map(|tile| {
                let m = Poly::from_signed(tile, p.t);
                sk.encrypt(&m, rng)
            })
            .collect();
        drop(encode_span);
        stats.ciphertexts_up = cts.len();
        {
            let _t = flash_telemetry::span!("hconv.wire_serialize");
            for ct in &cts {
                up.send(&serialize::ciphertext_to_bytes(ct))?;
            }
        }
        drop(cts);

        // --- Server: receive and validate the upload, fold in its share.
        let server_tiles = enc.encode_activation(&xs_signed);
        let cts_sum: Vec<Ciphertext> = server_tiles
            .iter()
            .map(|tile| {
                let bytes = up.recv()?;
                let ct = serialize::ciphertext_from_bytes(&bytes, p.n, p.q)?;
                ct.validate_for(p)?;
                Ok(ct.add_plain(&Poly::from_signed(tile, p.t), p))
            })
            .collect::<Result<_, FlashError>>()?;
        stats.upload_bytes = up.stats().payload_bytes as usize;
        stats.activation_transforms = 2 * cts_sum.len();

        let bands = enc.bands();
        let out_len = shape.output_len();
        let mut y_client = vec![0u64; out_len];
        let mut y_server = vec![0u64; out_len];
        let half_spectrum = (p.n / 2) as u64;

        // One mask seed per (oc, band) job, drawn sequentially up front,
        // so the parallel fan-out below produces the same masks for any
        // worker count.
        let mask_seeds: Vec<u64> = (0..shape.m * bands).map(|_| rng.next_u64()).collect();

        // Compiled weight-transform plans, one per band (plans are
        // structural, so every output channel shares them). Resolved
        // before the fan-out: plan compilation is deterministic and the
        // interner serves all workers the same `Arc`.
        let band_plans: Vec<Option<Arc<SparsePlan>>> =
            (0..bands).map(|b| self.band_plan(b)).collect();

        // Activation hoist: both components of every upload transform
        // exactly once, in one lane-parallel batched sweep, shared by all
        // `(oc, band)` jobs below. (`stats.activation_transforms` has
        // always modeled this accounting — two per ciphertext — and the
        // batched datapath now executes exactly that.)
        let act_spectra = self.backend.activation_spectra(&cts_sum, p);

        // --- Server fan-out: each output channel transforms its weights
        // and runs the per-band guard/MAC/mask/serialize independently.
        // Per band the response accumulates in the spectral domain (one
        // weight transform per channel group, no per-group inverses); the
        // channel's responses then close through one batched inverse.
        let per_oc = flash_runtime::parallel_gen(shape.m, |oc| {
            let w_polys = enc.encode_weight(
                &weights[oc * shape.kernel_len()..][..shape.kernel_len()],
                oc,
            );
            let groups = w_polys.len();
            let m_half = p.n / 2;
            // Phase 1: noise guard + spectral multiply-accumulate.
            // `None` marks a band whose ciphertext is still pending in
            // `spectral`; guard fallbacks resolve immediately on the
            // legacy exact path (which needs the coefficient-domain
            // ciphertexts, not the hoisted spectra).
            let mut resolved: Vec<(Option<Ciphertext>, ProtocolStats)> = Vec::with_capacity(bands);
            let mut spectral: Vec<(usize, BandAccumulator)> = Vec::with_capacity(bands);
            for b in 0..bands {
                let mut band_stats = ProtocolStats::default();
                // Noise guard: refuse (exact overflow) or fall back
                // (approximate error too close to the ceiling) before
                // any spectra are consumed.
                let (noise, w_sq) = self.band_noise_bound(&w_polys, b);
                noise.check()?;
                let fallback = match self.backend.error_model(p) {
                    Some(model) => {
                        let err = model.phase_error_bound(p, w_sq, groups);
                        noise.bound() + err >= self.noise_margin * noise.ceiling()
                    }
                    None => false,
                };
                band_stats.inverse_transforms += 2;
                if fallback {
                    if p.is_pow2() {
                        band_stats.pow2_fallbacks += 1;
                    } else {
                        band_stats.ntt_fallbacks += 1;
                    }
                    let mut acc = Ciphertext::zero(p.n, p.q);
                    for (g, w_poly) in w_polys.iter().enumerate() {
                        cts_sum[g * bands + b].mul_plain_signed_acc_exact(&w_poly[b], p, &mut acc);
                        band_stats.weight_transforms += 1;
                        band_stats.pointwise_muls += 2 * half_spectrum;
                    }
                    resolved.push((Some(acc), band_stats));
                    continue;
                }
                let mut acc = act_spectra.accumulator(p.n);
                match &band_plans[b] {
                    // Sparse fast path: one µop tape transforms every
                    // group's weight polynomial for this band in one
                    // lane-parallel sweep, then the spectra MAC against
                    // the hoisted activation spectra.
                    Some(plan) => {
                        let mut spectra = C64_SCRATCH.take(groups * m_half);
                        {
                            let _t = flash_telemetry::span!("hconv.weight_transform");
                            plan.execute_batch_into(
                                w_polys.iter().map(|w_poly| w_poly[b].as_slice()),
                                &mut spectra,
                            );
                        }
                        for (g, fw) in spectra.chunks_exact(m_half).enumerate() {
                            act_spectra.mac_fft(g * bands + b, fw, &mut acc);
                            band_stats.weight_transforms += 1;
                            band_stats.sparse_weight_transforms += 1;
                            band_stats.pointwise_muls += 2 * half_spectrum;
                        }
                    }
                    // Dense weights: one batched forward per band (all
                    // groups share the butterfly cascade W lanes wide).
                    None => {
                        let ws: Vec<&[i64]> =
                            w_polys.iter().map(|w_poly| w_poly[b].as_slice()).collect();
                        if matches!(self.backend, PolyMulBackend::Ntt) {
                            let mut fw = U64_SCRATCH.take(groups * p.n);
                            {
                                let _t = flash_telemetry::span!("hconv.weight_transform");
                                weight_residues_into(&ws, &mut fw, p.ntt());
                            }
                            for (g, fwg) in fw.chunks_exact(p.n).enumerate() {
                                act_spectra.mac_ntt(g * bands + b, fwg, p.ntt(), &mut acc);
                                band_stats.weight_transforms += 1;
                                band_stats.pointwise_muls += 2 * half_spectrum;
                            }
                        } else {
                            let mut fw = C64_SCRATCH.take(groups * m_half);
                            {
                                let _t = flash_telemetry::span!("hconv.weight_transform");
                                self.backend.weight_spectra_into(&ws, &mut fw, p.fft());
                            }
                            for (g, fwg) in fw.chunks_exact(m_half).enumerate() {
                                act_spectra.mac_fft(g * bands + b, fwg, &mut acc);
                                band_stats.weight_transforms += 1;
                                band_stats.pointwise_muls += 2 * half_spectrum;
                            }
                        }
                    }
                }
                spectral.push((b, acc));
                resolved.push((None, band_stats));
            }
            // Phase 2: one batched inverse for the channel's spectral
            // bands — `2·k` polynomials through one lane-parallel call.
            let (idxs, accs): (Vec<usize>, Vec<BandAccumulator>) = spectral.into_iter().unzip();
            for (b, ct) in idxs.into_iter().zip(BandAccumulator::finish_bands(accs, p)) {
                resolved[b].0 = Some(ct);
            }
            // Phase 3: mask and serialize per band, in band order.
            resolved
                .into_iter()
                .enumerate()
                .map(|(b, (acc, mut band_stats))| {
                    let acc = acc.expect("every band resolved by phase 2");
                    // Fresh random mask: the server's output share.
                    let mut mask_rng = StdRng::seed_from_u64(mask_seeds[oc * bands + b]);
                    let mask_vals: Vec<u64> =
                        (0..p.n).map(|_| mask_rng.gen_range(0..p.t)).collect();
                    let mask = Poly::from_coeffs(mask_vals, p.t);
                    let masked = acc.sub_plain(&mask, p);
                    // Server keeps its share from the mask coefficients at
                    // the output positions.
                    let mask_signed: Vec<i64> = mask.coeffs().iter().map(|&v| v as i64).collect();
                    let mut server_share = vec![0i64; out_len];
                    enc.decode_band(&mask_signed, b, oc, &mut server_share);
                    // Serialize the response for the downlink — optionally
                    // truncated (Cheetah's download compression; the
                    // `(d0, d1)` pair travels in the session context).
                    let response = match self.truncation {
                        None => serialize::ciphertext_to_bytes(&masked),
                        Some((d0, d1)) => {
                            let _t = flash_telemetry::span!("hconv.truncate_serialize");
                            TruncatedCiphertext::truncate(&masked, d0, d1, p).to_bytes(p)
                        }
                    };
                    band_stats.download_bytes += response.len();
                    Ok((b, server_share, response, band_stats))
                })
                .collect::<Result<Vec<_>, FlashError>>()
        });
        // Send the responses over the downlink in deterministic
        // `(oc, band)` order (the fan-out only prepared the bytes).
        let mut order = Vec::with_capacity(bands * shape.m);
        for (oc, oc_results) in per_oc.into_iter().enumerate() {
            for (b, server_share, response, band_stats) in oc_results? {
                stats.weight_transforms += band_stats.weight_transforms;
                stats.sparse_weight_transforms += band_stats.sparse_weight_transforms;
                stats.pointwise_muls += band_stats.pointwise_muls;
                stats.inverse_transforms += band_stats.inverse_transforms;
                stats.download_bytes += band_stats.download_bytes;
                stats.ntt_fallbacks += band_stats.ntt_fallbacks;
                stats.pow2_fallbacks += band_stats.pow2_fallbacks;
                self.merge_band(&server_share, b, oc, &mut y_server);
                down.send(&response)?;
                order.push((b, oc));
            }
        }
        stats.ciphertexts_down = order.len();

        // --- Client: drain the downlink (sequential — the transport owns
        // delivery order and recovery), then deserialize, validate,
        // decrypt and decode in parallel; the merge stays sequential.
        let mut received = Vec::with_capacity(order.len());
        for (b, oc) in order {
            received.push((b, oc, down.recv()?));
        }
        let decoded = flash_runtime::parallel_map(&received, |(b, oc, bytes)| {
            let _t = flash_telemetry::span!("hconv.decrypt");
            let ct = match self.truncation {
                None => {
                    let ct = serialize::ciphertext_from_bytes(bytes, p.n, p.q)?;
                    ct.validate_for(p)?;
                    ct
                }
                Some((d0, d1)) => TruncatedCiphertext::from_bytes(bytes, d0, d1, p)?.reconstruct(p),
            };
            let m = sk.try_decrypt(&ct)?;
            let coeffs: Vec<i64> = m.coeffs().iter().map(|&v| v as i64).collect();
            let mut tmp = vec![0i64; out_len];
            enc.decode_band(&coeffs, *b, *oc, &mut tmp);
            Ok::<_, FlashError>(tmp)
        });
        for ((b, oc, _), tmp) in received.iter().zip(decoded) {
            self.merge_band(&tmp?, *b, *oc, &mut y_client);
        }

        let wire = up.stats().merge(down.stats());
        stats.upload_wire_bytes = up.stats().wire_bytes as usize;
        stats.download_wire_bytes = down.stats().wire_bytes as usize;
        stats.faults_detected = wire.faults_detected as usize;
        stats.frames_retried = wire.frames_retried as usize;

        // Mirror the per-run accounting into the process-wide registry so
        // `flash_telemetry::snapshot()` sees aggregate protocol totals.
        flash_telemetry::counter!("twopc.runs").add(1);
        flash_telemetry::counter!("twopc.upload_bytes").add(stats.upload_bytes as u64);
        flash_telemetry::counter!("twopc.download_bytes").add(stats.download_bytes as u64);
        flash_telemetry::counter!("twopc.ciphertexts_up").add(stats.ciphertexts_up as u64);
        flash_telemetry::counter!("twopc.ciphertexts_down").add(stats.ciphertexts_down as u64);
        flash_telemetry::counter!("twopc.weight_transforms").add(stats.weight_transforms as u64);
        flash_telemetry::counter!("twopc.sparse_weight_transforms")
            .add(stats.sparse_weight_transforms as u64);
        flash_telemetry::counter!("twopc.activation_transforms")
            .add(stats.activation_transforms as u64);
        flash_telemetry::counter!("twopc.inverse_transforms").add(stats.inverse_transforms as u64);
        flash_telemetry::counter!("twopc.pointwise_muls").add(stats.pointwise_muls);
        flash_telemetry::counter!("twopc.upload_wire_bytes").add(stats.upload_wire_bytes as u64);
        flash_telemetry::counter!("twopc.download_wire_bytes")
            .add(stats.download_wire_bytes as u64);
        flash_telemetry::counter!("twopc.faults_detected").add(stats.faults_detected as u64);
        flash_telemetry::counter!("twopc.frames_retried").add(stats.frames_retried as u64);
        flash_telemetry::counter!("hconv.ntt_fallbacks").add(stats.ntt_fallbacks as u64);
        flash_telemetry::counter!("hconv.pow2_fallbacks").add(stats.pow2_fallbacks as u64);

        Ok((
            ConvOutputShares {
                client: y_client,
                server: y_server,
            },
            stats,
        ))
    }

    /// Reconstructs the signed output from the two shares.
    pub fn reconstruct(&self, shares: &ConvOutputShares) -> Vec<i64> {
        self.ring.reconstruct_vec(&shares.client, &shares.server)
    }

    /// Copies one decoded band (only its own output rows) into the
    /// accumulated share tensor.
    fn merge_band(&self, band_vals: &[i64], b: usize, oc: usize, out: &mut [u64]) {
        let shape = self.encoder.shape();
        let spec = self.encoder.band_spec(b);
        for pp in 0..spec.rows_out {
            for q in 0..shape.out_w() {
                let idx = (oc * shape.out_h() + spec.out_row0 + pp) * shape.out_w() + q;
                out[idx] = band_vals[idx] as u64;
            }
        }
    }
}

/// The worst-case decryption-noise bound of one `(oc, band)` response on
/// the exact pipeline — fresh encryption, server share fold, one weight
/// multiply per channel group accumulated into the response, the output
/// mask, and the agreed truncation — plus the total `Σw²` of the band's
/// weights (the input to [`flash_he::backend::ApproxErrorModel`]).
///
/// `w_polys` is one output channel's encoding
/// ([`ConvEncoder::encode_weight`]): `w_polys[group][band]` is a length-`N`
/// polynomial. Shared by [`ConvProtocol`] (per run) and the serving layer
/// (once per registered model — the bound depends only on the weights, so
/// a server can hoist it out of the per-request path).
pub fn conv_band_noise_bound(
    params: &HeParams,
    w_polys: &[Vec<Vec<i64>>],
    b: usize,
    truncation: Option<(u32, u32)>,
) -> (NoiseBound, f64) {
    let base = NoiseBound::fresh(params).after_plain_add();
    let mut acc: Option<NoiseBound> = None;
    let mut w_sq = 0.0;
    for w_poly in w_polys {
        let band = &w_poly[b];
        let l1: f64 = band.iter().map(|&v| (v as f64).abs()).sum();
        w_sq += band.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
        let nb = base.after_plain_mul(l1);
        acc = Some(match acc {
            None => nb,
            Some(a) => a.after_ct_add(&nb),
        });
    }
    let mut nb = acc.unwrap_or(base).after_plain_add();
    if let Some((d0, d1)) = truncation {
        let pow = |d: u32| {
            if d == 0 {
                0.0
            } else {
                (2.0f64).powi(d as i32 - 1)
            }
        };
        nb = nb.after_computation_error(pow(d0) + pow(d1) * params.n as f64);
    }
    (nb, w_sq)
}

/// The interned sparse weight-transform plan of band `b`.
///
/// The pattern comes from [`ConvEncoder::weight_indices`] — purely
/// structural, shared by every output channel and kernel placement of the
/// layer — folded into the `n/2`-slot negacyclic FFT domain, so all
/// `(oc, group)` jobs of a band share one interned tape. Callers decide
/// between the tape and the dense path via [`SparsePlan::worthwhile`].
pub fn conv_band_plan(encoder: &ConvEncoder, n: usize, b: usize) -> Arc<SparsePlan> {
    let half = n / 2;
    let mut mask = vec![false; half];
    for idx in encoder.weight_indices(b) {
        mask[idx % half] = true;
    }
    SparsePlan::shared(&SparsityPattern::from_mask(mask))
}

/// Signed reference convolution reduced into `Z_{2^l}` (what the protocol
/// must reproduce).
pub fn expected_conv_mod(
    x: &[i64],
    weights: &[i64],
    shape: &ConvShape,
    ring: ShareRing,
) -> Vec<i64> {
    flash_he::encoding::direct_conv_stride1(x, weights, shape)
        .iter()
        .map(|&v| ring.to_signed(ring.reduce(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run_case(shape: ConvShape, params: HeParams, backend: PolyMulBackend, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = ConvProtocol::new(params, shape, backend);
        let x: Vec<i64> = (0..shape.input_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|_| rng.gen_range(-8..8))
            .collect();
        let (shares, stats) = proto.run(&sk, &x, &w, &mut rng).unwrap();
        let got = proto.reconstruct(&shares);
        let want = expected_conv_mod(&x, &w, &shape, proto.ring());
        assert_eq!(got, want, "shape {shape}");
        assert_eq!(stats.ciphertexts_up, proto.encoder().activation_polys());
        assert_eq!(stats.ciphertexts_down, proto.encoder().result_polys());
        assert!(stats.upload_bytes > 0 && stats.download_bytes > 0);
        // framing overhead is real and accounted
        assert!(stats.upload_wire_bytes > stats.upload_bytes);
        assert!(stats.download_wire_bytes > stats.download_bytes);
        assert_eq!(stats.faults_detected, 0);
        assert_eq!(stats.frames_retried, 0);
    }

    #[test]
    fn single_tile_protocol_ntt() {
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        run_case(shape, HeParams::test_256(), PolyMulBackend::Ntt, 1);
    }

    #[test]
    fn single_tile_protocol_fft() {
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        run_case(shape, HeParams::test_256(), PolyMulBackend::FftF64, 2);
    }

    #[test]
    fn grouped_tiles_protocol() {
        // 4 channels of 8x8 = 256 coefficients in N = 256 -> cg = 4? no:
        // 4*64 = 256 fits exactly in one tile; force groups with c = 8.
        let shape = ConvShape {
            c: 8,
            h: 8,
            w: 8,
            m: 1,
            k: 3,
        };
        run_case(shape, HeParams::test_256(), PolyMulBackend::Ntt, 3);
    }

    #[test]
    fn banded_tiles_protocol() {
        // One 24x24 channel (576 > 256): row bands.
        let shape = ConvShape {
            c: 1,
            h: 24,
            w: 24,
            m: 1,
            k: 3,
        };
        run_case(shape, HeParams::test_256(), PolyMulBackend::FftF64, 4);
    }

    #[test]
    fn approx_backend_protocol_exact_at_modest_precision() {
        // FLASH's approximate weight transform at a comfortable operating
        // point must not disturb any output (errors stay below q/2t).
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let params = HeParams::test_256();
        let mut cfg = flash_fft::ApproxFftConfig::uniform(
            params.n,
            flash_math::fixed::FxpFormat::new(18, 34),
            30,
        );
        cfg.max_shift = 30;
        run_case(shape, params, PolyMulBackend::approx(cfg), 5);
    }

    #[test]
    fn sparse_and_dense_paths_produce_identical_shares() {
        // The acceptance bar for the compiled tape: with the same seed,
        // the protocol's outputs (both shares, not just the reconstructed
        // result) are bit-identical whether weight transforms run on the
        // sparse tape or the dense FFT.
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let sk = SecretKey::generate(&params, &mut rng);
        let x: Vec<i64> = (0..shape.input_len())
            .map(|i| ((i as i64 * 5) % 15) - 7)
            .collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|i| ((i as i64 * 3) % 15) - 7)
            .collect();

        let sparse = ConvProtocol::new(params.clone(), shape, PolyMulBackend::FftF64);
        let dense =
            ConvProtocol::new(params, shape, PolyMulBackend::FftF64).with_sparse_weights(false);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let (shares_s, stats_s) = sparse.run(&sk, &x, &w, &mut r1).unwrap();
        let mut r2 = rand::rngs::StdRng::seed_from_u64(9);
        let (shares_d, stats_d) = dense.run(&sk, &x, &w, &mut r2).unwrap();

        assert_eq!(shares_s, shares_d, "sparse path changed protocol output");
        assert_eq!(
            stats_s.sparse_weight_transforms, stats_s.weight_transforms,
            "every weight transform should have taken the tape"
        );
        assert!(stats_s.sparse_weight_transforms > 0);
        assert_eq!(stats_d.sparse_weight_transforms, 0);
        assert_eq!(
            sparse.reconstruct(&shares_s),
            expected_conv_mod(&x, &w, &shape, sparse.ring())
        );
    }

    #[test]
    fn ntt_backend_never_takes_the_sparse_path() {
        let shape = ConvShape {
            c: 1,
            h: 5,
            w: 5,
            m: 1,
            k: 3,
        };
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = ConvProtocol::new(params, shape, PolyMulBackend::Ntt);
        let x = vec![1i64; shape.input_len()];
        let w = vec![2i64; shape.m * shape.kernel_len()];
        let (shares, stats) = proto.run(&sk, &x, &w, &mut rng).unwrap();
        assert_eq!(stats.sparse_weight_transforms, 0);
        assert_eq!(
            proto.reconstruct(&shares),
            expected_conv_mod(&x, &w, &shape, proto.ring())
        );
    }

    #[test]
    fn truncated_responses_stay_correct_and_shrink_download() {
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let sk = SecretKey::generate(&params, &mut rng);
        let x: Vec<i64> = (0..shape.input_len())
            .map(|i| ((i as i64) % 15) - 7)
            .collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|i| ((i as i64 * 3) % 15) - 7)
            .collect();

        let plain = ConvProtocol::new(params.clone(), shape, PolyMulBackend::Ntt);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let (_, base_stats) = plain.run(&sk, &x, &w, &mut r1).unwrap();

        // a conservative truncation well inside the budget
        let trunc = ConvProtocol::new(params, shape, PolyMulBackend::Ntt).with_truncation(8, 2);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(1);
        let (shares, stats) = trunc.run(&sk, &x, &w, &mut r2).unwrap();
        assert_eq!(
            trunc.reconstruct(&shares),
            expected_conv_mod(&x, &w, &shape, trunc.ring())
        );
        assert!(
            stats.download_bytes < base_stats.download_bytes,
            "truncation must shrink the response: {} vs {}",
            stats.download_bytes,
            base_stats.download_bytes
        );
    }

    #[test]
    fn shares_alone_reveal_nothing_obvious() {
        // Sanity: the client share of a zero activation output is not zero
        // (it is masked), and reconstruction needs both shares.
        let shape = ConvShape {
            c: 1,
            h: 5,
            w: 5,
            m: 1,
            k: 3,
        };
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = ConvProtocol::new(params, shape, PolyMulBackend::Ntt);
        let x = vec![0i64; shape.input_len()];
        let w = vec![1i64; shape.kernel_len()];
        let (shares, _) = proto.run(&sk, &x, &w, &mut rng).unwrap();
        assert!(
            shares.client.iter().any(|&v| v != 0),
            "client share is masked"
        );
        assert!(
            shares.server.iter().any(|&v| v != 0),
            "server share is the mask"
        );
        assert!(proto.reconstruct(&shares).iter().all(|&v| v == 0));
    }

    fn approx_backend(params: &HeParams) -> PolyMulBackend {
        let mut cfg = flash_fft::ApproxFftConfig::uniform(
            params.n,
            flash_math::fixed::FxpFormat::new(18, 34),
            30,
        );
        cfg.max_shift = 30;
        PolyMulBackend::approx(cfg)
    }

    #[test]
    fn default_margin_reports_zero_fallbacks_at_modest_precision() {
        // At the comfortable operating point the analytical error bound
        // sits far below the ceiling, so the guard must not disturb the
        // approximate/sparse hot path.
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = ConvProtocol::new(params.clone(), shape, approx_backend(&params));
        let x: Vec<i64> = (0..shape.input_len())
            .map(|i| (i as i64 % 13) - 6)
            .collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|i| (i as i64 % 13) - 6)
            .collect();
        let (shares, stats) = proto.run(&sk, &x, &w, &mut rng).unwrap();
        assert_eq!(stats.ntt_fallbacks, 0);
        assert!(stats.sparse_weight_transforms > 0, "hot path undisturbed");
        assert_eq!(
            proto.reconstruct(&shares),
            expected_conv_mod(&x, &w, &shape, proto.ring())
        );
    }

    #[test]
    fn zero_margin_forces_exact_fallback_on_every_band() {
        // margin 0 makes any nonzero analytical error bound trip the
        // guard: every (oc, band) job must re-run on the NTT backend and
        // decryption must still be exact.
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = ConvProtocol::new(params.clone(), shape, approx_backend(&params))
            .with_noise_margin(0.0);
        let x: Vec<i64> = (0..shape.input_len())
            .map(|i| (i as i64 % 11) - 5)
            .collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|i| (i as i64 % 11) - 5)
            .collect();
        let (shares, stats) = proto.run(&sk, &x, &w, &mut rng).unwrap();
        assert_eq!(stats.ntt_fallbacks, stats.ciphertexts_down);
        assert_eq!(
            stats.sparse_weight_transforms, 0,
            "tapes produce FFT spectra"
        );
        assert_eq!(
            proto.reconstruct(&shares),
            expected_conv_mod(&x, &w, &shape, proto.ring())
        );
    }

    #[test]
    fn single_tile_protocol_pow2() {
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        run_case(shape, HeParams::pow2_test_256(), PolyMulBackend::Pow2, 3);
    }

    #[test]
    fn grouped_tiles_protocol_pow2() {
        let shape = ConvShape {
            c: 8,
            h: 8,
            w: 8,
            m: 1,
            k: 3,
        };
        run_case(shape, HeParams::pow2_test_256(), PolyMulBackend::Pow2, 4);
    }

    #[test]
    fn pow2_zero_margin_falls_back_to_wrapping_schoolbook_with_equal_output() {
        // The guard's pow2 arm: margin 0 trips the fallback on every
        // band (the Pow2 backend always has a nonzero error bound), the
        // exact path is the wrapping schoolbook (pow2_fallbacks, not
        // ntt_fallbacks — there is no NTT on this ring), and the
        // reconstructed output must equal both the direct reference and
        // the hot path's output for the same seed.
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let params = HeParams::pow2_test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let sk = SecretKey::generate(&params, &mut rng);
        let x: Vec<i64> = (0..shape.input_len())
            .map(|i| (i as i64 % 11) - 5)
            .collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|i| (i as i64 % 11) - 5)
            .collect();

        let guarded =
            ConvProtocol::new(params.clone(), shape, PolyMulBackend::Pow2).with_noise_margin(0.0);
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(47);
        let (g_shares, g_stats) = guarded.run(&sk, &x, &w, &mut run_rng).unwrap();
        assert_eq!(g_stats.pow2_fallbacks, g_stats.ciphertexts_down);
        assert_eq!(g_stats.ntt_fallbacks, 0, "no NTT exists on a pow2 ring");
        assert_eq!(g_stats.sparse_weight_transforms, 0);

        let hot = ConvProtocol::new(params.clone(), shape, PolyMulBackend::Pow2);
        let mut run_rng = rand::rngs::StdRng::seed_from_u64(47);
        let (h_shares, h_stats) = hot.run(&sk, &x, &w, &mut run_rng).unwrap();
        assert_eq!(h_stats.pow2_fallbacks, 0, "default margin keeps hot path");
        assert!(h_stats.sparse_weight_transforms > 0);

        let want = expected_conv_mod(&x, &w, &shape, guarded.ring());
        assert_eq!(guarded.reconstruct(&g_shares), want);
        assert_eq!(hot.reconstruct(&h_shares), want);
        // Same seed → same masks → the exact and approximate paths agree
        // share-for-share, not just after reconstruction.
        assert_eq!(g_shares, h_shares);
    }

    #[test]
    #[should_panic(expected = "power-of-two ciphertext modulus")]
    fn pow2_backend_rejects_prime_ring() {
        let shape = ConvShape {
            c: 1,
            h: 5,
            w: 5,
            m: 1,
            k: 3,
        };
        ConvProtocol::new(HeParams::test_256(), shape, PolyMulBackend::Pow2);
    }

    #[test]
    #[should_panic(expected = "prime ciphertext modulus")]
    fn ntt_backend_rejects_pow2_ring() {
        let shape = ConvShape {
            c: 1,
            h: 5,
            w: 5,
            m: 1,
            k: 3,
        };
        ConvProtocol::new(HeParams::pow2_test_256(), shape, PolyMulBackend::Ntt);
    }

    #[test]
    fn unsafe_truncation_fails_with_noise_overflow() {
        // A truncation whose worst-case error alone dwarfs the decryption
        // ceiling must be refused before any garbage is decrypted.
        let shape = ConvShape {
            c: 1,
            h: 5,
            w: 5,
            m: 1,
            k: 3,
        };
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let sk = SecretKey::generate(&params, &mut rng);
        let proto = ConvProtocol::new(params, shape, PolyMulBackend::Ntt).with_truncation(30, 25);
        let x = vec![1i64; shape.input_len()];
        let w = vec![1i64; shape.kernel_len()];
        let err = proto.run(&sk, &x, &w, &mut rng).unwrap_err();
        assert!(
            matches!(err, FlashError::He(flash_he::HeError::NoiseOverflow { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn conv_recovers_bit_identically_from_scripted_faults() {
        let shape = ConvShape {
            c: 2,
            h: 6,
            w: 6,
            m: 2,
            k: 3,
        };
        let params = HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let sk = SecretKey::generate(&params, &mut rng);
        let x: Vec<i64> = (0..shape.input_len()).map(|i| (i as i64 % 9) - 4).collect();
        let w: Vec<i64> = (0..shape.m * shape.kernel_len())
            .map(|i| (i as i64 % 9) - 4)
            .collect();

        let clean = ConvProtocol::new(params.clone(), shape, PolyMulBackend::Ntt);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let (clean_shares, _) = clean.run(&sk, &x, &w, &mut r1).unwrap();

        use crate::transport::{FaultOp, FaultPlan};
        let plan = FaultPlan::Scripted(vec![
            FaultOp::Truncate { keep: 9 },
            FaultOp::Duplicate,
            FaultOp::FlipBit { byte: 100, bit: 0 },
            FaultOp::Drop,
            FaultOp::Reorder,
        ]);
        let faulty = ConvProtocol::new(params, shape, PolyMulBackend::Ntt)
            .with_transport_config(TransportConfig::faulty(plan));
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        let (faulty_shares, stats) = faulty.run(&sk, &x, &w, &mut r2).unwrap();
        assert_eq!(
            faulty_shares, clean_shares,
            "recovered run must be bit-identical to the clean run"
        );
        assert!(stats.faults_detected > 0 && stats.frames_retried > 0);
        assert!(
            stats.upload_wire_bytes + stats.download_wire_bytes
                > stats.upload_bytes + stats.download_bytes,
            "retransmissions must show up in the wire accounting"
        );
    }
}
