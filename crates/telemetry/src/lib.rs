//! Unified telemetry for the FLASH pipeline.
//!
//! The workspace grew four disconnected counter systems (interner
//! hit/miss stats, scratch-pool recycling counters, the sparse-plan
//! cache metrics, per-run `ProtocolStats`) and no per-stage timing at
//! all — `BENCH_*.json` recorded end-to-end medians only, so a tripped
//! regression gate could not say *which* stage regressed. This crate is
//! the one substrate they all report through:
//!
//! * a process-wide **metrics registry** of named [`Counter`]s,
//!   [`Gauge`]s and latency [`Histogram`]s (fixed log2 buckets, atomics
//!   only — nothing allocates on the record path, mirroring the
//!   `ScratchPool` counter idiom);
//! * lightweight **RAII span timers** — [`span!`]`("weight_transform")`
//!   returns a guard whose drop records the elapsed nanoseconds into a
//!   per-call-site cached histogram. Spans compile to an inert
//!   zero-sized guard unless the default-off `telemetry` cargo feature
//!   is enabled, so the hot path pays nothing when observability is off
//!   (the feature is resolved *in this crate*, so downstream crates
//!   need no `cfg` of their own);
//! * one [`snapshot()`] that returns every metric in the process —
//!   registry contents plus the pre-existing counters (NTT/FFT plan
//!   interners, sparse symbolic-analysis and µop-plan caches, scratch
//!   pools) — as a serializable tree ([`Snapshot::to_json`]).
//!
//! # Placement
//!
//! This crate sits *above* the transform crates (`runtime`, `ntt`,
//! `fft`, `sparse`) so [`snapshot()`] can read their cache/pool
//! counters directly, and *below* the pipeline crates (`he`, `twopc`,
//! `accel`, `bench`) that instrument their stages with [`span!`]. The
//! dependency graph stays acyclic.
//!
//! # Stage naming convention
//!
//! The HConv pipeline stages use `hconv.<stage>` histogram names:
//! `encode`, `weight_transform` (dense or µop tape), `activation_fft`,
//! `pointwise_acc`, `inverse_fft`, `truncate_serialize`, `decrypt`,
//! plus the `hconv.layer` / `model.run_network` envelopes. Aggregate
//! protocol counters use `twopc.<field>`.

mod metric;
mod registry;
mod snapshot;
mod span;

pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{counter, gauge, histogram, reset};
pub use snapshot::{snapshot, CacheSnapshot, PoolSnapshot, Snapshot};
pub use span::Span;

/// Whether span timing is compiled in (`telemetry` cargo feature).
///
/// Counters, gauges and [`snapshot()`] work regardless; only the
/// [`span!`] guards become inert when this is `false`.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Starts an RAII span timer recording into the named histogram.
///
/// The registry lookup happens once per call site (cached in a local
/// `OnceLock`); afterwards entering a span costs one `Instant::now()`
/// and its drop one more plus a handful of relaxed atomic adds. With
/// the `telemetry` feature disabled the guard is a zero-sized no-op.
///
/// ```
/// let _t = flash_telemetry::span!("hconv.encode");
/// // ... timed region ends when `_t` drops ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __FLASH_SPAN_HIST: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::Span::enter(&__FLASH_SPAN_HIST, $name)
    }};
}

/// Returns the named [`Counter`], cached per call site.
///
/// ```
/// flash_telemetry::counter!("twopc.runs").add(1);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __FLASH_COUNTER: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__FLASH_COUNTER.get_or_init(|| $crate::counter($name))
    }};
}
