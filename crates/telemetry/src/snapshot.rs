//! One tree with every metric in the process.
//!
//! [`snapshot`] merges the registry (counters, gauges, span histograms)
//! with the pre-existing ad-hoc counter systems — the NTT/FFT plan
//! interners, the sparse symbolic-analysis and compiled-plan caches,
//! and the scratch pools — so callers (notably `bench_perf`) report one
//! unified view instead of stitching four APIs together.

use crate::metric::HistogramSnapshot;
use crate::registry::REGISTRY;
use flash_runtime::{CacheStats, PoolStats};

/// Hit/miss/eviction counters of one plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Stable cache name (e.g. `ntt_tables`).
    pub name: &'static str,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that built a new entry.
    pub misses: u64,
    /// Entries dropped by the cache's LRU capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: u64,
}

/// Recycling counters of one scratch pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSnapshot {
    /// Element-type name of the pool (e.g. `u64`).
    pub name: &'static str,
    /// Checkouts served from a recycled buffer.
    pub hits: u64,
    /// Checkouts that allocated.
    pub misses: u64,
    /// Capacity bytes handed out from recycled buffers.
    pub bytes_recycled: u64,
    /// Fraction of checkouts served without allocating.
    pub hit_rate: f64,
}

/// Point-in-time view of every metric in the process.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Whether span timing was compiled in ([`crate::enabled`]).
    pub enabled: bool,
    /// Registered counters, by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Registered gauges, by name.
    pub gauges: Vec<(&'static str, i64)>,
    /// Registered span histograms, by name.
    pub spans: Vec<(&'static str, HistogramSnapshot)>,
    /// Plan-cache hit/miss counters.
    pub caches: Vec<CacheSnapshot>,
    /// Scratch-pool recycling counters.
    pub pools: Vec<PoolSnapshot>,
}

fn cache(name: &'static str, s: CacheStats) -> CacheSnapshot {
    CacheSnapshot {
        name,
        hits: s.hits,
        misses: s.misses,
        evictions: s.evictions,
        entries: s.entries,
    }
}

fn pool(name: &'static str, s: PoolStats) -> PoolSnapshot {
    PoolSnapshot {
        name,
        hits: s.hits,
        misses: s.misses,
        bytes_recycled: s.bytes_recycled,
        hit_rate: s.hit_rate(),
    }
}

/// Collects every metric in the process into one [`Snapshot`].
pub fn snapshot() -> Snapshot {
    // Surface the sparse-plan cache's aggregate sizes as gauges so they
    // appear in the same tree as everything else.
    let pm = flash_sparse::plan::plan_cache_metrics();
    crate::gauge("sparse_plan_cache.plans").set(pm.plans as i64);
    crate::gauge("sparse_plan_cache.uops").set(pm.uops as i64);
    crate::gauge("sparse_plan_cache.tape_bytes").set(pm.tape_bytes as i64);

    let counters = REGISTRY
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(&name, c)| (name, c.get()))
        .collect();
    let gauges = REGISTRY
        .gauges
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(&name, g)| (name, g.get()))
        .collect();
    let spans = REGISTRY
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(&name, h)| (name, h.snapshot()))
        .collect();

    Snapshot {
        enabled: crate::enabled(),
        counters,
        gauges,
        spans,
        caches: vec![
            cache("ntt_tables", flash_ntt::NttTables::shared_cache_stats()),
            cache("fft_plans", flash_fft::NegacyclicFft::shared_cache_stats()),
            cache(
                "fixed_fft_plans",
                flash_fft::fixed_fft::FixedNegacyclicFft::shared_cache_stats(),
            ),
            cache(
                "sparse_analysis",
                flash_sparse::symbolic::analysis_cache_stats(),
            ),
            cache("sparse_plans", pm.stats),
        ],
        pools: vec![
            pool("u64", flash_runtime::U64_SCRATCH.stats()),
            pool("f64", flash_runtime::F64_SCRATCH.stats()),
            pool("i128", flash_runtime::I128_SCRATCH.stats()),
            pool("c64", flash_fft::C64_SCRATCH.stats()),
        ],
    }
}

impl Snapshot {
    /// Serializes the tree as pretty-printed JSON, each line prefixed
    /// with `base_indent` spaces so callers can embed it inside a larger
    /// document (the first line carries no prefix; the caller places
    /// it). Span durations are reported in derived units (`total_ms`,
    /// `mean_us`, percentile `_us` fields) for direct reading.
    pub fn to_json(&self, base_indent: usize) -> String {
        let pad = " ".repeat(base_indent);
        let mut out = String::from("{\n");
        let field = |out: &mut String, line: &str| {
            out.push_str(&pad);
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        };
        field(
            &mut out,
            &format!("\"telemetry_enabled\": {},", self.enabled),
        );

        field(&mut out, "\"stages\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            field(
                &mut out,
                &format!(
                    "  \"{name}\": {{\"count\": {}, \"total_ms\": {:.4}, \"mean_us\": {:.2}, \
                     \"p50_us\": {:.2}, \"p90_us\": {:.2}, \"p99_us\": {:.2}, \"max_us\": {:.2}}}{comma}",
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.mean_ns() as f64 / 1e3,
                    s.p50_ns as f64 / 1e3,
                    s.p90_ns as f64 / 1e3,
                    s.p99_ns as f64 / 1e3,
                    s.max_ns as f64 / 1e3,
                ),
            );
        }
        field(&mut out, "},");

        field(&mut out, "\"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            field(&mut out, &format!("  \"{name}\": {v}{comma}"));
        }
        field(&mut out, "},");

        field(&mut out, "\"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            field(&mut out, &format!("  \"{name}\": {v}{comma}"));
        }
        field(&mut out, "},");

        field(&mut out, "\"caches\": {");
        for (i, c) in self.caches.iter().enumerate() {
            let comma = if i + 1 < self.caches.len() { "," } else { "" };
            field(
                &mut out,
                &format!(
                    "  \"{}\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
                     \"entries\": {}}}{comma}",
                    c.name, c.hits, c.misses, c.evictions, c.entries
                ),
            );
        }
        field(&mut out, "},");

        field(&mut out, "\"pools\": {");
        for (i, p) in self.pools.iter().enumerate() {
            let comma = if i + 1 < self.pools.len() { "," } else { "" };
            field(
                &mut out,
                &format!(
                    "  \"{}\": {{\"hits\": {}, \"misses\": {}, \"bytes_recycled\": {}, \
                     \"hit_rate\": {:.4}}}{comma}",
                    p.name, p.hits, p.misses, p.bytes_recycled, p.hit_rate
                ),
            );
        }
        field(&mut out, "}");

        out.push_str(&pad);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_contains_all_cache_and_pool_systems() {
        // touch one pool so the counters are live
        drop(flash_runtime::U64_SCRATCH.take(8));
        let s = snapshot();
        let cache_names: Vec<_> = s.caches.iter().map(|c| c.name).collect();
        assert_eq!(
            cache_names,
            [
                "ntt_tables",
                "fft_plans",
                "fixed_fft_plans",
                "sparse_analysis",
                "sparse_plans"
            ]
        );
        let pool_names: Vec<_> = s.pools.iter().map(|p| p.name).collect();
        assert_eq!(pool_names, ["u64", "f64", "i128", "c64"]);
        assert_eq!(s.enabled, crate::enabled());
    }

    #[test]
    fn snapshot_reflects_registry_contents() {
        crate::counter("test.snapshot.ctr").add(5);
        crate::gauge("test.snapshot.gauge").set(-3);
        crate::histogram("test.snapshot.hist").record_ns(1000);
        let s = snapshot();
        assert!(s
            .counters
            .iter()
            .any(|&(n, v)| n == "test.snapshot.ctr" && v >= 5));
        assert!(s
            .gauges
            .iter()
            .any(|&(n, v)| n == "test.snapshot.gauge" && v == -3));
        assert!(s
            .spans
            .iter()
            .any(|&(n, h)| n == "test.snapshot.hist" && h.count >= 1));
    }

    #[test]
    fn snapshot_surfaces_plan_cache_gauges() {
        let s = snapshot();
        for g in [
            "sparse_plan_cache.plans",
            "sparse_plan_cache.uops",
            "sparse_plan_cache.tape_bytes",
        ] {
            assert!(s.gauges.iter().any(|&(n, _)| n == g), "missing gauge {g}");
        }
    }

    #[test]
    fn json_is_balanced_and_embeddable() {
        crate::counter("test.snapshot.json").add(1);
        let s = snapshot();
        let json = s.to_json(2);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("  }"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert!(json.contains("\"telemetry_enabled\""));
        assert!(json.contains("\"stages\""));
        assert!(json.contains("\"pools\""));
        assert!(json.contains("\"test.snapshot.json\": "));
    }
}
