//! The process-wide metric registry.
//!
//! Metrics are registered lazily by name and live for the process
//! lifetime (`Box::leak`), so lookups hand out `&'static` references
//! and the record path never revisits the registry. The registry lock
//! is only taken at registration and snapshot time; [`span!`] and
//! [`counter!`] cache the reference per call site in a `OnceLock`, so
//! each site pays the lock exactly once.
//!
//! [`span!`]: crate::span!
//! [`counter!`]: crate::counter!

use crate::metric::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::Mutex;

pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    pub(crate) gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    pub(crate) histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

pub(crate) static REGISTRY: Registry = Registry {
    counters: Mutex::new(BTreeMap::new()),
    gauges: Mutex::new(BTreeMap::new()),
    histograms: Mutex::new(BTreeMap::new()),
};

fn intern<T>(
    map: &Mutex<BTreeMap<&'static str, &'static T>>,
    name: &'static str,
    build: impl FnOnce() -> T,
) -> &'static T {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(build())))
}

/// The named counter, registering it on first use.
pub fn counter(name: &'static str) -> &'static Counter {
    intern(&REGISTRY.counters, name, Counter::new)
}

/// The named gauge, registering it on first use.
pub fn gauge(name: &'static str) -> &'static Gauge {
    intern(&REGISTRY.gauges, name, Gauge::new)
}

/// The named histogram, registering it on first use.
pub fn histogram(name: &'static str) -> &'static Histogram {
    intern(&REGISTRY.histograms, name, Histogram::new)
}

/// Zeroes every registered counter, gauge and histogram (registrations
/// and call-site caches stay valid). For tests and benchmark sections
/// that want a clean measurement window — the cache/pool counters
/// surfaced by [`crate::snapshot`] have their own reset entry points.
pub fn reset() {
    for c in REGISTRY
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
    {
        c.reset();
    }
    for g in REGISTRY
        .gauges
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
    {
        g.reset();
    }
    for h in REGISTRY
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
    {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_metric() {
        let a = counter("test.registry.same");
        let b = counter("test.registry.same");
        assert!(std::ptr::eq(a, b));
        a.add(2);
        assert_eq!(b.get(), 2);
    }

    #[test]
    fn kinds_are_namespaced_separately() {
        counter("test.registry.kind").add(1);
        gauge("test.registry.kind").set(9);
        histogram("test.registry.kind").record_ns(5);
        assert_eq!(counter("test.registry.kind").get(), 1);
        assert_eq!(gauge("test.registry.kind").get(), 9);
        assert_eq!(histogram("test.registry.kind").snapshot().count, 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let c = counter("test.registry.reset");
        c.add(7);
        let h = histogram("test.registry.reset");
        h.record_ns(100);
        reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        // the &'static stays usable after reset
        c.add(1);
        assert_eq!(counter("test.registry.reset").get(), 1);
    }
}
