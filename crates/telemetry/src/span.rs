//! RAII span timers.
//!
//! A [`Span`] records the wall-clock time between its construction and
//! its drop into a named histogram. The `telemetry` cargo feature is
//! resolved *here*, inside this crate's function bodies — downstream
//! crates call [`crate::span!`] unconditionally and get either the real
//! timer or an inert zero-sized guard depending on how this crate was
//! compiled. With the feature off, `Span` has no fields and no `Drop`
//! impl, so the optimizer erases the guard entirely.

use crate::metric::Histogram;
use std::sync::OnceLock;

/// RAII guard timing one instrumented region; see [`crate::span!`].
#[must_use = "a span records on drop; binding it to `_` ends it immediately"]
pub struct Span {
    #[cfg(feature = "telemetry")]
    active: Option<(&'static Histogram, std::time::Instant)>,
}

impl Span {
    /// Starts a span recording into `cell`'s histogram, registering it
    /// under `name` on the first call per call site. Use via
    /// [`crate::span!`], which supplies the per-call-site `cell`.
    #[inline]
    pub fn enter(cell: &OnceLock<&'static Histogram>, name: &'static str) -> Span {
        #[cfg(feature = "telemetry")]
        {
            let hist = *cell.get_or_init(|| crate::registry::histogram(name));
            Span {
                active: Some((hist, std::time::Instant::now())),
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (cell, name);
            Span {}
        }
    }

    /// Ends the span early without recording (e.g. an error path that
    /// should not pollute the latency distribution).
    pub fn cancel(#[allow(unused_mut)] mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.active = None;
        }
    }
}

#[cfg(feature = "telemetry")]
impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((hist, start)) = self.active.take() {
            hist.record_ns(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_is_inert_or_records_matching_the_feature() {
        {
            let _t = crate::span!("test.span.basic");
        }
        let recorded = crate::histogram("test.span.basic").snapshot().count;
        if crate::enabled() {
            assert_eq!(recorded, 1);
        } else {
            assert_eq!(recorded, 0, "disabled spans must not record");
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn cancel_suppresses_recording() {
        let t = crate::span!("test.span.cancel");
        t.cancel();
        assert_eq!(crate::histogram("test.span.cancel").snapshot().count, 0);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_span_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Span>(), 0);
    }

    #[test]
    fn enter_caches_per_call_site() {
        static CELL: OnceLock<&'static Histogram> = OnceLock::new();
        let a = Span::enter(&CELL, "test.span.cached");
        drop(a);
        let b = Span::enter(&CELL, "test.span.cached");
        drop(b);
        if crate::enabled() {
            assert_eq!(crate::histogram("test.span.cached").snapshot().count, 2);
        }
    }
}
