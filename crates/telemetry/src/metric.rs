//! Metric primitives: atomics-only counters, gauges and log2-bucket
//! latency histograms.
//!
//! Every record operation is a handful of relaxed atomic
//! read-modify-writes — no locks, no allocation — so metrics can sit on
//! transform hot paths and inside parallel regions without perturbing
//! what they measure. The registry hands out `&'static` references, so
//! recording never touches the registry lock either.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log2 buckets: covers every representable `u64` nanosecond
/// value (bucket `i` holds `[2^i, 2^{i+1})`; 0 ns lands in bucket 0).
pub(crate) const BUCKETS: usize = 64;

/// A monotonically increasing event counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub(crate) const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-writer-wins signed level (cache sizes, queue depths).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub(crate) const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A latency histogram with fixed log2 buckets over nanoseconds.
///
/// Fixed bucket boundaries mean the record path is a shift plus four
/// relaxed atomic operations — no allocation, no comparison ladder —
/// at the cost of percentiles that are exact only to within their
/// power-of-two bucket (reported as the bucket's geometric midpoint).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub total_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample (0 when empty).
    pub max_ns: u64,
    /// Estimated median (log2-bucket midpoint).
    pub p50_ns: u64,
    /// Estimated 90th percentile.
    pub p90_ns: u64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index of a sample: `floor(log2(ns))`, with 0 mapping to
    /// bucket 0.
    #[inline]
    fn bucket_of(ns: u64) -> usize {
        (63 - ns.max(1).leading_zeros()) as usize
    }

    /// Records one latency sample.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time summary. Concurrent recording makes the fields
    /// individually — not jointly — consistent, which is fine for
    /// reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let percentile = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                cum += c;
                if cum >= rank {
                    // geometric midpoint of [2^i, 2^{i+1})
                    return (1u64 << i) + (1u64 << i) / 2;
                }
            }
            0
        };
        let min = self.min_ns.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            total_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 { 0 } else { min },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            p50_ns: percentile(0.50),
            p90_ns: percentile(0.90),
            p99_ns: percentile(0.99),
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.reset();
        assert_eq!(c.get(), 0);
        let g = Gauge::new();
        g.set(-5);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = Histogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.total_ns, 101_500);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 100_000);
        assert_eq!(s.mean_ns(), 20_300);
        // p50 of {100,200,400,800,100000}: third sample (400) → the
        // [256,512) bucket midpoint.
        assert_eq!(s.p50_ns, 256 + 128);
        // p99 rank 5 → the 100_000 sample's bucket [65536,131072).
        assert_eq!(s.p99_ns, 65_536 + 32_768);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(
            (s.count, s.total_ns, s.min_ns, s.max_ns, s.p50_ns),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn zero_sample_lands_in_bucket_zero() {
        let h = Histogram::new();
        h.record_ns(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.p50_ns, 1); // bucket 0 midpoint estimate
    }

    #[test]
    fn bucket_of_is_floor_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }
}
