//! Golden-file test: pins the emitted Verilog so that generator changes
//! show up as reviewable diffs instead of silent RTL churn.

use flash_fft::twiddle::StageTwiddles;
use flash_rtl::shift_add::{emit_csd_cmul, ShiftCandidates};

#[test]
fn tiny_csd_cmul_matches_golden_file() {
    let stage = StageTwiddles::fft_stage(2, 2, 4);
    let cands = ShiftCandidates::from_stage(&stage, 2, 4);
    let (text, _) = emit_csd_cmul("csd_cmul_tiny", 8, &cands);
    let golden = include_str!("golden/csd_cmul_tiny.v");
    assert_eq!(
        text, golden,
        "emitted RTL diverged from the golden file; if intentional, \
         regenerate crates/rtl/tests/golden/csd_cmul_tiny.v"
    );
}

#[test]
fn generation_is_deterministic() {
    let stage = StageTwiddles::fft_stage(5, 5, 16);
    let cands = ShiftCandidates::from_stage(&stage, 5, 8);
    let (a, sa) = emit_csd_cmul("m", 39, &cands);
    let (b, sb) = emit_csd_cmul("m", 39, &cands);
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}
