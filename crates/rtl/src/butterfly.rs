//! The approximate butterfly unit: one CSD complex multiplier plus the
//! complex add/subtract pair, with registered outputs.

use crate::netlist::ModuleStats;
use crate::shift_add::{emit_csd_cmul, ShiftCandidates};
use std::fmt::Write as _;

/// Emits the butterfly-unit module (and its embedded multiplier module).
/// Computes `out_u = u + w·v`, `out_v = u − w·v` on `width`-bit complex
/// fixed-point data, registered on `clk`.
pub fn emit_butterfly(name: &str, width: u32, cands: &ShiftCandidates) -> (String, ModuleStats) {
    let mul_name = format!("{name}_cmul");
    let (mul_text, mut stats) = emit_csd_cmul(&mul_name, width, cands);
    let ow = width + 2;
    let sel_total = cands.total_sel_bits();
    let k = cands.k();

    let mut v = String::new();
    writeln!(v, "{mul_text}").unwrap();
    writeln!(v, "// radix-2 approximate butterfly: u ± w*v").unwrap();
    writeln!(v, "module {name} (").unwrap();
    writeln!(v, "  input  wire clk,").unwrap();
    for p in ["ur", "ui", "vr", "vi"] {
        writeln!(v, "  input  wire signed [{}:0] {p},", width - 1).unwrap();
    }
    for p in ["sel_re", "sel_im"] {
        writeln!(v, "  input  wire [{}:0] {p},", sel_total - 1).unwrap();
    }
    for p in ["neg_re", "neg_im", "zero_re", "zero_im"] {
        writeln!(v, "  input  wire [{}:0] {p},", k - 1).unwrap();
    }
    for p in ["our", "oui"] {
        writeln!(v, "  output reg signed [{}:0] {p},", ow).unwrap();
    }
    writeln!(v, "  output reg signed [{}:0] ovr,", ow).unwrap();
    writeln!(v, "  output reg signed [{}:0] ovi", ow).unwrap();
    writeln!(v, ");").unwrap();
    writeln!(v, "  wire signed [{}:0] wr, wi;", ow - 1).unwrap();
    writeln!(v, "  {mul_name} mul (").unwrap();
    writeln!(v, "    .xr(vr), .xi(vi),").unwrap();
    writeln!(v, "    .sel_re(sel_re), .sel_im(sel_im),").unwrap();
    writeln!(v, "    .neg_re(neg_re), .neg_im(neg_im),").unwrap();
    writeln!(v, "    .zero_re(zero_re), .zero_im(zero_im),").unwrap();
    writeln!(v, "    .pr(wr), .pi(wi)").unwrap();
    writeln!(v, "  );").unwrap();
    writeln!(v, "  always @(posedge clk) begin").unwrap();
    writeln!(v, "    our <= ur + wr;").unwrap();
    writeln!(v, "    oui <= ui + wi;").unwrap();
    writeln!(v, "    ovr <= ur - wr;").unwrap();
    writeln!(v, "    ovi <= ui - wi;").unwrap();
    writeln!(v, "  end").unwrap();
    writeln!(v, "endmodule").unwrap();

    stats.adder_bits += 4 * (ow as u64 + 1); // the four output add/subs
    stats.reg_bits += 4 * (ow as u64 + 1); // registered outputs
    stats.wires += 2;
    (v, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_fft::twiddle::StageTwiddles;
    use flash_hw::cost::CostModel;
    use flash_hw::units::BuKind;

    fn bu(k: usize) -> (String, ModuleStats) {
        let stage = StageTwiddles::fft_stage(8, k, 16);
        let cands = ShiftCandidates::from_stage(&stage, k, 8);
        emit_butterfly("flash_bu", 39, &cands)
    }

    #[test]
    fn butterfly_module_structure() {
        let (text, stats) = bu(5);
        // two modules in the file: the multiplier and the BU
        assert_eq!(text.matches("\nmodule ").count() + 1, 3); // csd_cmul + bu (+1 for leading)
        assert!(text.contains("flash_bu_cmul mul ("));
        assert!(text.contains("always @(posedge clk)"));
        assert!(text.contains("our <= ur + wr;"));
        assert!(stats.reg_bits > 0);
    }

    #[test]
    fn emitted_stats_agree_with_cost_model() {
        // The netlist tally priced with the shared constants must land
        // within ~3x of the flash-hw BU estimate: the RTL instantiates the
        // shift MUX datapath once per (input component × twiddle
        // component) pairing (4k muxes) where the Table-II-calibrated
        // model charges the paper's shared-datapath 2k figure, so the
        // emitted netlist is expectedly heavier but of the same order.
        let m = CostModel::cmos28();
        let (_, stats) = bu(5);
        let rtl_cost = stats.cost(&m);
        let model_cost = BuKind::flash_approx().cost(&m);
        let ratio = rtl_cost.area_um2 / model_cost.area_um2;
        assert!(
            (0.8..3.0).contains(&ratio),
            "RTL {} vs model {} (ratio {ratio})",
            rtl_cost,
            model_cost
        );
    }

    #[test]
    fn stats_scale_with_k_like_the_model() {
        let m = CostModel::cmos28();
        let (_, s5) = bu(5);
        let (_, s18) = bu(18);
        let rtl_ratio = s18.cost(&m).area_um2 / s5.cost(&m).area_um2;
        let model_ratio = BuKind::Approx {
            data_bits: 39,
            k: 18,
            mux_inputs: 8,
        }
        .cost(&m)
        .area_um2
            / BuKind::flash_approx().cost(&m).area_um2;
        assert!(
            (rtl_ratio / model_ratio - 1.0).abs() < 0.5,
            "k-scaling: rtl {rtl_ratio} vs model {model_ratio}"
        );
    }
}
