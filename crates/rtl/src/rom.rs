//! Twiddle ROM content generation.
//!
//! Each ROM word encodes one quantized twiddle: per digit, a MUX select,
//! a sign bit and a zero-kill bit, for both the real and imaginary
//! components. The word layout matches the ports of the emitted
//! `csd_cmul` module; the output is a `$readmemh`-compatible hex file.

use crate::shift_add::ShiftCandidates;
use flash_fft::twiddle::StageTwiddles;
use std::fmt::Write as _;

/// The packed ROM image of one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwiddleRom {
    words: Vec<u128>,
    word_bits: u32,
}

impl TwiddleRom {
    /// Packs a stage's quantized twiddles against its MUX candidate sets.
    ///
    /// # Panics
    ///
    /// Panics if a word would exceed 128 bits (`k` beyond ~20 with 3-bit
    /// selects).
    pub fn pack(stage: &StageTwiddles, cands: &ShiftCandidates) -> Self {
        let k = cands.k() as u32;
        let sel_bits = cands.total_sel_bits();
        // layout (LSB first): sel_re | sel_im | neg_re | neg_im |
        // zero_re | zero_im
        let word_bits = 2 * sel_bits + 4 * k;
        assert!(word_bits <= 128, "ROM word too wide: {word_bits}");
        let words = (0..stage.len())
            .map(|j| {
                let q = stage.get(j);
                let enc_re = cands.encode(&q.re);
                let enc_im = cands.encode(&q.im);
                let mut w: u128 = 0;
                let mut off = 0u32;
                for enc in [&enc_re, &enc_im] {
                    for (t, &(sel, _, _)) in enc.iter().enumerate() {
                        w |= (sel as u128) << (off + sel_offset(cands, t));
                    }
                    off += sel_bits;
                }
                for enc in [&enc_re, &enc_im] {
                    for (t, &(_, neg, _)) in enc.iter().enumerate() {
                        if neg {
                            w |= 1u128 << (off + t as u32);
                        }
                    }
                    off += k;
                }
                for enc in [&enc_re, &enc_im] {
                    for (t, &(_, _, zero)) in enc.iter().enumerate() {
                        if zero {
                            w |= 1u128 << (off + t as u32);
                        }
                    }
                    off += k;
                }
                w
            })
            .collect();
        Self { words, word_bits }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the ROM is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Word width in bits.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Total ROM bits (the quantity the `flash-hw` memory model prices).
    pub fn total_bits(&self) -> u64 {
        self.words.len() as u64 * self.word_bits as u64
    }

    /// Raw words.
    pub fn words(&self) -> &[u128] {
        &self.words
    }

    /// Renders a `$readmemh` file.
    pub fn to_hex(&self) -> String {
        let digits = (self.word_bits as usize).div_ceil(4);
        let mut out = String::with_capacity(self.words.len() * (digits + 1));
        for w in &self.words {
            writeln!(out, "{w:0digits$x}").unwrap();
        }
        out
    }
}

fn sel_offset(cands: &ShiftCandidates, t: usize) -> u32 {
    (0..t).map(|i| cands.sel_bits(i)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rom(k: usize) -> (TwiddleRom, StageTwiddles, ShiftCandidates) {
        let stage = StageTwiddles::fft_stage(7, k, 16);
        let cands = ShiftCandidates::from_stage(&stage, k, 8);
        (TwiddleRom::pack(&stage, &cands), stage, cands)
    }

    #[test]
    fn rom_dimensions() {
        let (r, stage, cands) = rom(5);
        assert_eq!(r.len(), stage.len());
        assert_eq!(r.word_bits(), 2 * cands.total_sel_bits() + 4 * 5);
        assert_eq!(r.total_bits(), r.len() as u64 * r.word_bits() as u64);
    }

    #[test]
    fn hex_roundtrip() {
        let (r, _, _) = rom(5);
        let hex = r.to_hex();
        let lines: Vec<&str> = hex.lines().collect();
        assert_eq!(lines.len(), r.len());
        for (line, &w) in lines.iter().zip(r.words()) {
            assert_eq!(u128::from_str_radix(line, 16).unwrap(), w);
        }
    }

    #[test]
    fn trivial_twiddle_encodes_with_zero_kills() {
        // entry 0 is ω⁰ = 1 + 0i: one live real digit (shift 0, positive),
        // an all-zero imaginary part.
        let (r, _, cands) = rom(5);
        let w0 = r.words()[0];
        let sel_bits = cands.total_sel_bits();
        let k = 5u32;
        // zero_im field (the topmost k bits) must be all ones
        let zero_im = (w0 >> (2 * sel_bits + 3 * k)) & ((1 << k) - 1);
        assert_eq!(zero_im, (1 << k) - 1, "imaginary digits of ω⁰ are zero");
        // zero_re must kill everything but the leading digit
        let zero_re = (w0 >> (2 * sel_bits + 2 * k)) & ((1 << k) - 1);
        assert_eq!(zero_re, ((1 << k) - 1) & !1, "only digit 0 of re is live");
    }

    #[test]
    fn rom_bits_track_the_hw_memory_model() {
        // flash-hw prices the shared twiddle ROM as 2k(1+shift_bits) bits
        // per entry; the packed layout must be within ~1.5x of that.
        let (r, _, _) = rom(5);
        let model_bits_per_entry = 2 * 5 * (1 + 6) as u64;
        let packed = r.word_bits() as u64;
        let ratio = packed as f64 / model_bits_per_entry as f64;
        assert!(
            (0.5..1.5).contains(&ratio),
            "packed {packed} vs model {model_bits_per_entry}"
        );
    }
}
