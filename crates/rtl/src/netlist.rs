//! Structural statistics of emitted modules.
//!
//! Generators tally the datapath resources they instantiate; the tallies
//! are cross-checked against the `flash-hw` analytical cost model so that
//! the RTL and the area/power numbers describe the same hardware.

use flash_hw::cost::{CostModel, UnitCost};

/// Resource tally of one emitted module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleStats {
    /// Two-input adders/subtractors, weighted by bit width (sum of
    /// widths).
    pub adder_bits: u64,
    /// MUX capacity as `inputs × width` summed over all muxes.
    pub mux_input_bits: u64,
    /// Register bits.
    pub reg_bits: u64,
    /// Distinct wires declared (a sanity metric, not a cost driver).
    pub wires: u64,
}

impl ModuleStats {
    /// Merges another module's tally (e.g. a submodule instance).
    pub fn merge(&mut self, other: &ModuleStats) {
        self.adder_bits += other.adder_bits;
        self.mux_input_bits += other.mux_input_bits;
        self.reg_bits += other.reg_bits;
        self.wires += other.wires;
    }

    /// Evaluates the tally under the analytical cost model (same
    /// per-resource constants as `flash-hw`).
    pub fn cost(&self, m: &CostModel) -> UnitCost {
        UnitCost::new(
            m.add_area * self.adder_bits as f64
                + m.mux_area * self.mux_input_bits as f64
                + m.reg_area * self.reg_bits as f64,
            (m.add_power * self.adder_bits as f64
                + m.mux_power * self.mux_input_bits as f64
                + m.reg_power * self.reg_bits as f64)
                / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ModuleStats {
            adder_bits: 10,
            mux_input_bits: 20,
            reg_bits: 5,
            wires: 3,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.adder_bits, 20);
        assert_eq!(a.mux_input_bits, 40);
        assert_eq!(a.reg_bits, 10);
        assert_eq!(a.wires, 6);
    }

    #[test]
    fn cost_is_linear_in_resources() {
        let m = CostModel::cmos28();
        let one = ModuleStats {
            adder_bits: 39,
            mux_input_bits: 312,
            reg_bits: 0,
            wires: 0,
        };
        let two = ModuleStats {
            adder_bits: 78,
            mux_input_bits: 624,
            reg_bits: 0,
            wires: 0,
        };
        let c1 = one.cost(&m);
        let c2 = two.cost(&m);
        assert!((c2.area_um2 - 2.0 * c1.area_um2).abs() < 1e-9);
        assert!((c2.power_mw - 2.0 * c1.power_mw).abs() < 1e-12);
    }
}
