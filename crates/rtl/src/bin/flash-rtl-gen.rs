//! `flash-rtl-gen` — emit the FLASH approximate-datapath RTL bundle.
//!
//! ```text
//! flash-rtl-gen [out_dir] [k] [width]
//! ```
//!
//! Writes one butterfly-unit module and one twiddle ROM image per FFT
//! stage of the `N = 4096` (2048-point) pipeline, plus a manifest with
//! the structural statistics and model-cost cross-check.

use flash_fft::twiddle::StageTwiddles;
use flash_hw::cost::CostModel;
use flash_rtl::butterfly::emit_butterfly;
use flash_rtl::rom::TwiddleRom;
use flash_rtl::shift_add::ShiftCandidates;
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = PathBuf::from(args.first().map(String::as_str).unwrap_or("rtl_out"));
    let k: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let width: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(39);
    std::fs::create_dir_all(&out_dir)?;

    let m = CostModel::cmos28();
    let mut manifest = String::new();
    writeln!(
        manifest,
        "# FLASH RTL bundle: k = {k}, data width = {width}"
    )
    .unwrap();
    writeln!(
        manifest,
        "# stage  module              rom_words  rom_bits  adders_bits  mux_in_bits"
    )
    .unwrap();

    let stages = 11u32; // 2048-point pipeline
    let mut total_bits = 0u64;
    for s in 1..=stages {
        let stage = StageTwiddles::fft_stage(s, k, 24);
        let cands = ShiftCandidates::from_stage(&stage, k, 8);
        let name = format!("flash_bu_s{s}");
        let (text, stats) = emit_butterfly(&name, width, &cands);
        std::fs::write(out_dir.join(format!("{name}.v")), text)?;
        let rom = TwiddleRom::pack(&stage, &cands);
        std::fs::write(out_dir.join(format!("twiddle_s{s}.hex")), rom.to_hex())?;
        // self-checking testbench with golden vectors from the Rust model
        let inputs = [
            (1i64 << 30, 0i64),
            (0, 1 << 30),
            (123_456_789, -987_654_321),
        ];
        let step = (stage.len() / 8).max(1);
        let vectors = flash_rtl::testbench::golden_vectors(&stage, &cands, &inputs, step);
        let tb = flash_rtl::testbench::emit_testbench(
            &format!("{name}_cmul"),
            width,
            &stage,
            &cands,
            &vectors,
        );
        std::fs::write(out_dir.join(format!("{name}_cmul_tb.v")), tb)?;
        total_bits += rom.total_bits();
        writeln!(
            manifest,
            "{s:>7}  {name:<18} {:>9} {:>9} {:>12} {:>12}",
            rom.len(),
            rom.total_bits(),
            stats.adder_bits,
            stats.mux_input_bits
        )
        .unwrap();
    }
    writeln!(manifest, "# total ROM bits: {total_bits}").unwrap();
    let model = m.memory(total_bits);
    writeln!(
        manifest,
        "# hw-model ROM estimate: {:.0} um^2, {:.3} mW",
        model.area_um2, model.power_mw
    )
    .unwrap();
    std::fs::write(out_dir.join("MANIFEST.txt"), &manifest)?;
    println!("wrote {} stages to {}", stages, out_dir.display());
    print!("{manifest}");
    Ok(())
}
