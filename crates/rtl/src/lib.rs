//! Synthesizable Verilog generators for FLASH's approximate datapath.
//!
//! The paper evaluates hand-written RTL synthesized with Design Compiler;
//! an open-source release of such an accelerator ships the *generators*,
//! because the interesting modules are parameterized by data that only
//! exists at design time — the CSD-quantized twiddle ROM contents and the
//! per-stage bit-widths chosen by the DSE. This crate emits:
//!
//! * [`shift_add`] — the complex-by-quantized-twiddle multiplier of
//!   Figure 9 (shift MUXes + adder tree), specialized per `k`;
//! * [`butterfly`] — the radix-2 approximate butterfly unit;
//! * [`rom`] — twiddle ROM initialization files (CSD-encoded words and
//!   a `readmemh`-compatible hex dump);
//! * [`netlist`] — structural statistics of emitted modules
//!   (adder/mux/register tallies), cross-checked against the `flash-hw`
//!   cost model so the area/power numbers and the RTL describe the same
//!   hardware.
//!
//! The output is plain Verilog-2001, one module per string; no external
//! tools are invoked. A golden-file test pins the emitted text so
//! generator changes are reviewable.

pub mod butterfly;
pub mod netlist;
pub mod rom;
pub mod shift_add;
pub mod testbench;

pub use netlist::ModuleStats;
