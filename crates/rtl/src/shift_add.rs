//! The Figure-9 multiplier: complex multiplication by a CSD-quantized
//! twiddle implemented as shift MUXes feeding an adder tree.
//!
//! The generator is parameterized by the *stage's* twiddle set: each of
//! the `k` digit positions gets a MUX over the distinct shift amounts
//! that digit takes anywhere in the set (the paper empirically caps the
//! MUX at 8-to-1). Per-twiddle select and sign words come from the ROM
//! (see [`crate::rom`]).

use crate::netlist::ModuleStats;
use flash_fft::twiddle::StageTwiddles;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The shift-candidate sets of one stage: `cands[t]` lists the distinct
/// shifts that the `t`-th CSD digit uses across the stage's twiddles
/// (real and imaginary components pooled, as they share MUX hardware).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftCandidates {
    cands: Vec<Vec<u32>>,
    k: usize,
}

impl ShiftCandidates {
    /// Collects the candidates from a stage table, capping each MUX at
    /// `max_mux` inputs (rarely-used shifts beyond the cap are folded to
    /// the nearest kept candidate; the resulting value error is part of
    /// the twiddle quantization error budget).
    pub fn from_stage(stage: &StageTwiddles, k: usize, max_mux: usize) -> Self {
        let mut sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); k];
        for j in 0..stage.len() {
            let q = stage.get(j);
            for coeff in [&q.re, &q.im] {
                for (t, term) in coeff.terms().enumerate().take(k) {
                    sets[t].insert(term.shift);
                }
            }
        }
        let cands = sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<u32> = s.into_iter().collect();
                if v.is_empty() {
                    v.push(0);
                }
                v.truncate(max_mux);
                v
            })
            .collect();
        Self { cands, k }
    }

    /// The candidate shifts of digit `t`.
    pub fn candidates(&self, t: usize) -> &[u32] {
        &self.cands[t]
    }

    /// Select-field width for digit `t` (`⌈log2 candidates⌉`, min 1).
    pub fn sel_bits(&self, t: usize) -> u32 {
        (self.cands[t].len() as f64).log2().ceil().max(1.0) as u32
    }

    /// Total select bits across digits (one component's ROM field).
    pub fn total_sel_bits(&self) -> u32 {
        (0..self.k).map(|t| self.sel_bits(t)).sum()
    }

    /// Digit count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Encodes one CSD coefficient into `(sel, neg, zero)` fields per
    /// digit: the select index of the nearest candidate shift, the sign,
    /// and a zero-kill flag for coefficients with fewer than `k` digits.
    pub fn encode(&self, coeff: &flash_math::csd::CsdCoeff) -> Vec<(u32, bool, bool)> {
        let mut out = Vec::with_capacity(self.k);
        let terms: Vec<_> = coeff.terms().collect();
        for t in 0..self.k {
            match terms.get(t) {
                Some(term) => {
                    let cand = &self.cands[t];
                    let idx = cand
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &s)| s.abs_diff(term.shift))
                        .map(|(i, _)| i as u32)
                        .unwrap_or(0);
                    out.push((idx, term.neg, false));
                }
                None => out.push((0, false, true)),
            }
        }
        out
    }
}

/// Evaluates the *encoded* multiplier semantics exactly as the emitted
/// Verilog computes them (arithmetic right shifts, i.e. truncation):
/// the golden model for generated testbenches, and the ground truth for
/// encoding-fidelity tests.
pub fn evaluate_encoded(
    xr: i64,
    xi: i64,
    enc_re: &[(u32, bool, bool)],
    enc_im: &[(u32, bool, bool)],
    cands: &ShiftCandidates,
) -> (i64, i64) {
    let term = |x: i64, enc: &[(u32, bool, bool)]| -> i64 {
        enc.iter()
            .enumerate()
            .map(|(t, &(sel, neg, zero))| {
                if zero {
                    return 0;
                }
                let s = cands.candidates(t)[sel as usize];
                let v = x >> s; // arithmetic shift, as in the RTL
                if neg {
                    -v
                } else {
                    v
                }
            })
            .sum()
    };
    let pr = term(xr, enc_re) - term(xi, enc_im);
    let pi = term(xi, enc_re) + term(xr, enc_im);
    (pr, pi)
}

/// Emits the `csd_cmul` Verilog module for a stage: complex input
/// `(xr, xi)`, per-component select/sign/zero words, complex output.
/// Returns the module text and its resource tally.
pub fn emit_csd_cmul(name: &str, width: u32, cands: &ShiftCandidates) -> (String, ModuleStats) {
    let k = cands.k();
    let ow = width + 2; // headroom for the adder tree
    let mut v = String::new();
    let mut stats = ModuleStats::default();
    let sel_total = cands.total_sel_bits();

    writeln!(v, "// auto-generated by flash-rtl: do not edit").unwrap();
    writeln!(v, "// complex multiply by a CSD-quantized twiddle, k = {k}").unwrap();
    writeln!(v, "module {name} (").unwrap();
    writeln!(v, "  input  wire signed [{}:0] xr,", width - 1).unwrap();
    writeln!(v, "  input  wire signed [{}:0] xi,", width - 1).unwrap();
    writeln!(v, "  input  wire [{}:0] sel_re,", sel_total - 1).unwrap();
    writeln!(v, "  input  wire [{}:0] sel_im,", sel_total - 1).unwrap();
    writeln!(v, "  input  wire [{}:0] neg_re,", k - 1).unwrap();
    writeln!(v, "  input  wire [{}:0] neg_im,", k - 1).unwrap();
    writeln!(v, "  input  wire [{}:0] zero_re,", k - 1).unwrap();
    writeln!(v, "  input  wire [{}:0] zero_im,", k - 1).unwrap();
    writeln!(v, "  output wire signed [{}:0] pr,", ow - 1).unwrap();
    writeln!(v, "  output wire signed [{}:0] pi", ow - 1).unwrap();
    writeln!(v, ");").unwrap();

    // Shift MUX + sign for every (input component, coefficient component,
    // digit) combination that the complex product needs.
    for (xin, comp) in [("xr", "re"), ("xr", "im"), ("xi", "re"), ("xi", "im")] {
        let mut off = 0u32;
        for t in 0..k {
            let cand = cands.candidates(t);
            let sb = cands.sel_bits(t);
            writeln!(v, "  // digit {t}: {xin} x w_{comp}").unwrap();
            writeln!(v, "  reg signed [{}:0] t_{xin}_{comp}_{t};", ow - 1).unwrap();
            writeln!(v, "  always @(*) begin").unwrap();
            writeln!(v, "    case (sel_{comp}[{}:{}])", off + sb - 1, off).unwrap();
            for (i, &s) in cand.iter().enumerate() {
                writeln!(v, "      {sb}'d{i}: t_{xin}_{comp}_{t} = {xin} >>> {s};").unwrap();
            }
            writeln!(v, "      default: t_{xin}_{comp}_{t} = {{{ow}{{1'b0}}}};").unwrap();
            writeln!(v, "    endcase").unwrap();
            writeln!(
                v,
                "    if (zero_{comp}[{t}]) t_{xin}_{comp}_{t} = {{{ow}{{1'b0}}}};"
            )
            .unwrap();
            writeln!(
                v,
                "    if (neg_{comp}[{t}]) t_{xin}_{comp}_{t} = -t_{xin}_{comp}_{t};"
            )
            .unwrap();
            writeln!(v, "  end").unwrap();
            stats.mux_input_bits += (cand.len() as u64 + 1) * ow as u64;
            stats.adder_bits += ow as u64; // the conditional negate
            stats.wires += 1;
            off += sb;
        }
    }

    // Adder trees: wr-part = Σ t_xr_re, wi-part = Σ t_xr_im, etc.
    for (out, pos, negp) in [
        ("pr", ("xr", "re"), ("xi", "im")),
        ("pi", ("xi", "re"), ("xr", "im")),
    ] {
        let plus: Vec<String> = (0..k)
            .map(|t| format!("t_{}_{}_{t}", pos.0, pos.1))
            .collect();
        let minus: Vec<String> = (0..k)
            .map(|t| format!("t_{}_{}_{t}", negp.0, negp.1))
            .collect();
        let sign = if out == "pr" { "-" } else { "+" };
        writeln!(
            v,
            "  assign {out} = ({}) {sign} ({});",
            plus.join(" + "),
            minus.join(" + ")
        )
        .unwrap();
        stats.adder_bits += (2 * k as u64 - 1) * ow as u64;
        stats.wires += 1;
    }
    writeln!(v, "endmodule").unwrap();
    (v, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_math::csd::CsdCoeff;

    fn stage() -> StageTwiddles {
        StageTwiddles::fft_stage(6, 5, 16)
    }

    #[test]
    fn candidates_cover_stage_digits() {
        let s = stage();
        let c = ShiftCandidates::from_stage(&s, 5, 8);
        assert_eq!(c.k(), 5);
        for t in 0..5 {
            assert!(!c.candidates(t).is_empty());
            assert!(c.candidates(t).len() <= 8, "MUX cap respected");
            assert!(c.sel_bits(t) >= 1 && c.sel_bits(t) <= 3);
        }
    }

    #[test]
    fn encode_roundtrips_known_coefficient() {
        let s = stage();
        let c = ShiftCandidates::from_stage(&s, 5, 8);
        // 21/32 = 2^-1 + 2^-3 + 2^-5
        let coeff = CsdCoeff::quantize(21.0 / 32.0, 5, 8);
        let enc = c.encode(&coeff);
        assert_eq!(enc.len(), 5);
        // first three digits live, last two zero-killed
        assert!(!enc[0].2 && !enc[1].2 && !enc[2].2);
        assert!(enc[3].2 && enc[4].2);
        // selected candidates decode to the right shifts where available
        for (t, term) in coeff.terms().enumerate() {
            let cand = c.candidates(t);
            let sel = enc[t].0 as usize;
            if cand.contains(&term.shift) {
                assert_eq!(cand[sel], term.shift, "digit {t}");
            }
        }
    }

    #[test]
    fn emitted_verilog_is_structurally_sound() {
        let s = stage();
        let c = ShiftCandidates::from_stage(&s, 5, 8);
        let (text, stats) = emit_csd_cmul("csd_cmul_s6", 39, &c);
        assert!(text.starts_with("// auto-generated"));
        assert!(text.contains("module csd_cmul_s6 ("));
        assert!(text.contains("endmodule"));
        // 4 component products x 5 digits = 20 mux cases blocks
        assert_eq!(text.matches("case (sel_").count(), 20);
        assert_eq!(text.matches("always @(*)").count(), 20);
        // two output adder trees
        assert!(text.contains("assign pr ="));
        assert!(text.contains("assign pi ="));
        // balanced module/endmodule and no unresolved placeholders
        assert_eq!(text.matches("module csd_cmul_s6").count(), 1);
        assert_eq!(text.matches("endmodule").count(), 1);
        assert!(stats.adder_bits > 0 && stats.mux_input_bits > 0);
    }

    #[test]
    fn stats_track_k() {
        let s = stage();
        let c5 = ShiftCandidates::from_stage(&s, 5, 8);
        let big = StageTwiddles::fft_stage(6, 12, 16);
        let c12 = ShiftCandidates::from_stage(&big, 12, 8);
        let (_, s5) = emit_csd_cmul("m5", 39, &c5);
        let (_, s12) = emit_csd_cmul("m12", 39, &c12);
        // adders scale linearly with k; MUX capacity grows sublinearly
        // because late digits have few distinct shift candidates.
        assert!(s12.adder_bits > 2 * s5.adder_bits);
        assert!(s12.mux_input_bits > s5.mux_input_bits * 14 / 10);
    }
}
