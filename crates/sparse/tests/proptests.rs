//! Property-based tests for the sparse dataflow.

use flash_fft::dft::Direction;
use flash_fft::fft64::FftPlan;
use flash_math::C64;
use flash_sparse::executor::SparseFft;
use flash_sparse::pattern::SparsityPattern;
use flash_sparse::pipeline::simulate_pe;
use flash_sparse::schedule::PeModel;
use flash_sparse::symbolic::{analyze, analyze_with_profile};
use proptest::prelude::*;

fn pattern(log_m: u32, seed: u64, density_pct: usize) -> SparsityPattern {
    let m = 1usize << log_m;
    let mask: Vec<bool> = (0..m)
        .map(|i| {
            ((i as u64).wrapping_mul(seed | 1).wrapping_add(seed >> 7)) % 100 < density_pct as u64
        })
        .collect();
    SparsityPattern::from_mask(mask)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mults_bounded_by_dense_and_profile_consistent(
        log_m in 2u32..11,
        seed in any::<u64>(),
        density in 0usize..100,
    ) {
        let p = pattern(log_m, seed, density).bit_reversed();
        let (counts, profile) = analyze_with_profile(&p);
        prop_assert!(counts.mults() <= counts.dense_mults());
        prop_assert_eq!(profile.total(), counts.mults());
        prop_assert_eq!(profile.per_stage.len(), log_m as usize);
    }

    #[test]
    fn empty_and_full_extremes(log_m in 2u32..10) {
        let m = 1usize << log_m;
        let empty = analyze(&SparsityPattern::from_indices(m, []));
        prop_assert_eq!(empty.mults(), 0);
        let full = analyze(&SparsityPattern::dense(m));
        prop_assert_eq!(full.mults(), full.dense_mults());
    }

    #[test]
    fn executor_equals_dense_fft(
        log_m in 2u32..9,
        seed in any::<u64>(),
        density in 1usize..100,
    ) {
        let m = 1usize << log_m;
        let p = pattern(log_m, seed, density);
        let input: Vec<C64> = (0..m)
            .map(|i| {
                if p.get(i) {
                    let v = ((i as u64).wrapping_mul(seed | 1) % 97) as f64 / 12.0 - 4.0;
                    C64::new(v, -v / 3.0)
                } else {
                    C64::ZERO
                }
            })
            .collect();
        let sp = SparseFft::new(m);
        let got = sp.transform(&input);
        let plan = FftPlan::new(m);
        let mut want = input.clone();
        plan.transform(&mut want, Direction::Positive);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn pipeline_simulation_bounds_hold(
        log_m in 3u32..11,
        seed in any::<u64>(),
        density in 0usize..60,
        bus in 1u32..8,
    ) {
        let p = pattern(log_m, seed, density).bit_reversed();
        let (counts, profile) = analyze_with_profile(&p);
        let pe = PeModel { bus_per_pe: bus, stage_overhead: 2 };
        let sim = simulate_pe(&profile, &pe);
        let est = pe.sparse_cycles(&counts);
        // barrier simulation >= ideal estimate − rounding, and bounded by
        // est + one BU-round per stage
        prop_assert!(sim.total + 1 >= est);
        prop_assert!(sim.total <= est + log_m as u64 + 1);
    }

    #[test]
    fn adding_live_slots_never_reduces_cost(log_m in 3u32..9, seed in any::<u64>()) {
        let m = 1usize << log_m;
        let base = pattern(log_m, seed, 20);
        let mut more_mask = base.mask().to_vec();
        // light one extra slot deterministically
        let extra = (seed as usize) % m;
        if more_mask[extra] {
            return Ok(());
        }
        more_mask[extra] = true;
        let c_base = analyze(&base.bit_reversed());
        let c_more = analyze(&SparsityPattern::from_mask(more_mask).bit_reversed());
        prop_assert!(c_more.mults() >= c_base.mults());
    }
}
