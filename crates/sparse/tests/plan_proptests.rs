//! Property-based tests for the compiled µop-tape plans: across random
//! sparsity patterns, transform sizes, and batch widths, the tape's
//! output matches the dense `NegacyclicFft` (and, where its accuracy
//! admits, `FixedNegacyclicFft`) forward transform — including the
//! all-dense and single-nonzero corner cases.

use flash_fft::fixed_fft::FixedNegacyclicFft;
use flash_fft::{ApproxFftConfig, NegacyclicFft};
use flash_math::fixed::FxpFormat;
use flash_math::C64;
use flash_sparse::{SparsePlan, SparsityPattern};
use proptest::prelude::*;

fn pattern(log_m: u32, seed: u64, density_pct: usize) -> SparsityPattern {
    let m = 1usize << log_m;
    let mask: Vec<bool> = (0..m)
        .map(|i| {
            ((i as u64).wrapping_mul(seed | 1).wrapping_add(seed >> 7)) % 100 < density_pct as u64
        })
        .collect();
    SparsityPattern::from_mask(mask)
}

/// Deterministic small signed weights supported on `p` (a live slot may
/// populate either or both of its folded coefficient pair).
fn weights(p: &SparsityPattern, seed: u64) -> Vec<i64> {
    let m = p.len();
    let mut w = vec![0i64; 2 * m];
    for (j, &live) in p.mask().iter().enumerate() {
        if live {
            let h = (j as u64).wrapping_mul(seed | 1).wrapping_add(seed >> 9);
            if !h.is_multiple_of(3) {
                w[j] = (h % 15) as i64 - 7;
            }
            if h % 3 != 1 {
                w[j + m] = ((h >> 8) % 15) as i64 - 7;
            }
        }
    }
    w
}

fn max_err(a: &[C64], b: &[C64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

fn assert_matches_dense(p: &SparsityPattern, seed: u64) {
    let m = p.len();
    let w = weights(p, seed);
    let wf: Vec<f64> = w.iter().map(|&x| x as f64).collect();
    let want = NegacyclicFft::new(2 * m).forward(&wf);
    let plan = SparsePlan::compile(p);
    let mut got = vec![C64::ZERO; m];
    plan.execute_into(&w, &mut got);
    let scale = want.iter().map(|c| c.abs()).fold(1.0, f64::max);
    prop_assert!(
        max_err(&got, &want) < 1e-9 * scale,
        "tape diverged from NegacyclicFft at m={m}"
    );
    // The f64 entry point must agree exactly with the i64 one on
    // integer-valued inputs (identical arithmetic).
    let mut got_f = vec![C64::ZERO; m];
    plan.execute_f64_into(&wf, &mut got_f);
    prop_assert_eq!(&got[..], &got_f[..]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tape_matches_dense_fft(
        log_m in 2u32..9,
        seed in any::<u64>(),
        density in 1usize..100,
    ) {
        assert_matches_dense(&pattern(log_m, seed, density), seed);
    }

    #[test]
    fn all_dense_corner_matches(log_m in 2u32..9, seed in any::<u64>()) {
        assert_matches_dense(&SparsityPattern::dense(1usize << log_m), seed);
    }

    #[test]
    fn single_nonzero_corner_matches(log_m in 2u32..9, seed in any::<u64>()) {
        let m = 1usize << log_m;
        let p = SparsityPattern::from_indices(m, [(seed as usize) % m]);
        assert_matches_dense(&p, seed | 1);
        // Merging collapses an isolated value to at most one mult per
        // output chain; far fewer than dense.
        let plan = SparsePlan::compile(&p);
        prop_assert!(plan.muls() <= m as u64);
    }

    #[test]
    fn batch_lanes_match_single_executions(
        log_m in 2u32..8,
        seed in any::<u64>(),
        density in 1usize..80,
        batch in 1usize..6,
    ) {
        let p = pattern(log_m, seed, density);
        let m = p.len();
        let plan = SparsePlan::compile(&p);
        let ws: Vec<Vec<i64>> =
            (0..batch).map(|i| weights(&p, seed.wrapping_add(i as u64 * 131))).collect();
        let mut batched = vec![C64::ZERO; batch * m];
        plan.execute_batch_into(ws.iter().map(|w| w.as_slice()), &mut batched);
        for (i, w) in ws.iter().enumerate() {
            let mut single = vec![C64::ZERO; m];
            plan.execute_into(w, &mut single);
            prop_assert_eq!(&batched[i * m..][..m], &single[..], "lane {}", i);
        }
    }

    #[test]
    fn tape_matches_wide_fixed_point_fft(
        log_m in 3u32..8,
        seed in any::<u64>(),
        density in 1usize..60,
    ) {
        // A wide fixed-point datapath (the regime FLASH operates the
        // approximate weight transform in) agrees with the exact tape to
        // within its quantization error.
        let p = pattern(log_m, seed, density);
        let m = p.len();
        let n = 2 * m;
        let mut cfg = ApproxFftConfig::uniform(n, FxpFormat::new(20, 60), 60);
        cfg.max_shift = 55;
        let fixed = FixedNegacyclicFft::shared(&cfg);
        let w = weights(&p, seed);
        let mut fixed_out = vec![C64::ZERO; m];
        let _ = fixed.forward_into(&w, &mut fixed_out);
        let plan = SparsePlan::compile(&p);
        let mut got = vec![C64::ZERO; m];
        plan.execute_into(&w, &mut got);
        let scale = fixed_out.iter().map(|c| c.abs()).fold(1.0, f64::max);
        prop_assert!(
            max_err(&got, &fixed_out) < 1e-6 * scale,
            "tape diverged from wide FixedNegacyclicFft at m={}", m
        );
    }

    #[test]
    fn interned_plans_dedupe_and_count_muls_below_dense(
        log_m in 2u32..9,
        seed in any::<u64>(),
        density in 0usize..100,
    ) {
        let p = pattern(log_m, seed, density);
        let a = SparsePlan::shared(&p);
        let b = SparsePlan::shared(&p);
        prop_assert!(std::sync::Arc::ptr_eq(&a, &b));
        prop_assert!(a.muls() <= a.dense_muls());
        prop_assert!(a.tape_bytes() >= a.tape_len());
    }
}
