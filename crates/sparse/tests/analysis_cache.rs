//! Memoization semantics of the symbolic-analysis cache.

use flash_sparse::symbolic::{analysis_cache_stats, analyze, analyze_cached, analyze_with_profile};
use flash_sparse::SparsityPattern;
use std::sync::Arc;

#[test]
fn analyze_cached_memoizes_and_matches_uncached() {
    // Distinct patterns so this test owns its cache keys even though the
    // memo is process-global.
    let p1 = SparsityPattern::from_indices(256, [0usize, 3, 9, 17, 100]);
    let p2 = SparsityPattern::from_indices(256, [1usize, 2, 250]);

    let before = analysis_cache_stats();
    let a1 = analyze_cached(&p1);
    let a1_again = analyze_cached(&p1);
    let a2 = analyze_cached(&p2);
    let after = analysis_cache_stats();

    // Same mask -> same Arc, no re-analysis; distinct mask -> new entry.
    assert!(
        Arc::ptr_eq(&a1, &a1_again),
        "repeat lookup must hit the memo"
    );
    assert!(!Arc::ptr_eq(&a1, &a2));
    assert!(after.hits > before.hits, "expected a recorded cache hit");
    assert!(after.misses >= before.misses + 2);

    // Memoized results agree exactly with the uncached entry points.
    assert_eq!(a1.0, analyze(&p1));
    let (counts, profile) = analyze_with_profile(&p2);
    assert_eq!(a2.0, counts);
    assert_eq!(a2.1, profile);
}

#[test]
fn patterns_differing_only_in_length_do_not_collide() {
    // Same set bits, different pattern lengths: the digest must keep the
    // exact length so a 64-slot and a 128-slot network never share an
    // analysis.
    let short = SparsityPattern::from_indices(64, [0usize, 5, 9]);
    let long = SparsityPattern::from_indices(128, [0usize, 5, 9]);
    let a = analyze_cached(&short);
    let b = analyze_cached(&long);
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(a.0.m, 64);
    assert_eq!(b.0.m, 128);
}
