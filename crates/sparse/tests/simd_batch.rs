//! SoA batched tape interpreter vs the scalar interpreter.
//!
//! The lane-interleaved batch path of [`SparsePlan::execute_batch_into`]
//! promises outputs **bit-identical** to per-polynomial
//! [`SparsePlan::execute_into`] runs at every dispatch level and batch
//! width — per lane it evaluates the same expression sequence over the
//! same interned roots (and Rust never contracts `a*b + c` into an FMA).
//!
//! `force_level` is process-global; this file is its own test process and
//! serializes the flips behind a lock.

use flash_fft::simd::{self, SimdLevel};
use flash_math::C64;
use flash_sparse::pattern::{cheetah_weight_pattern, SparsityPattern};
use flash_sparse::plan::SparsePlan;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn available_levels() -> Vec<SimdLevel> {
    [
        SimdLevel::Scalar,
        SimdLevel::Portable,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ]
    .into_iter()
    .filter(|&l| l <= simd::detected_level())
    .collect()
}

/// Batch widths worth testing at lane width `w`: empty, sub-width, exact,
/// remainder one short / one over, multiple blocks.
fn batch_widths(w: usize) -> Vec<usize> {
    let mut v = vec![0, 1, w.saturating_sub(1), w, w + 1, 2 * w + 3];
    v.dedup();
    v
}

/// Deterministic signed weights restricted to the pattern's live slots.
fn weights_for(pattern: &SparsityPattern, seed: u64) -> Vec<i64> {
    let m = pattern.len();
    let mut w = vec![0i64; 2 * m];
    for (j, live) in pattern.mask().iter().enumerate() {
        if *live {
            let x = (j as u64 + 1).wrapping_mul(seed | 1);
            let x = x ^ (x >> 29);
            w[j] = (x % 255) as i64 - 127;
            w[j + m] = ((x >> 8) % 255) as i64 - 127;
        }
    }
    w
}

fn scalar_reference(plan: &SparsePlan, ws: &[Vec<i64>]) -> Vec<C64> {
    let m = plan.size();
    let mut want = vec![C64::ZERO; ws.len() * m];
    for (b, w) in ws.iter().enumerate() {
        plan.execute_into(w, &mut want[b * m..(b + 1) * m]);
    }
    want
}

fn assert_bits_eq(got: &[C64], want: &[C64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            (g.re.to_bits(), g.im.to_bits()),
            (w.re.to_bits(), w.im.to_bits()),
            "{ctx}: slot {i}: {g:?} vs {w:?}"
        );
    }
}

fn check_pattern(pattern: &SparsityPattern, label: &str) {
    let plan = SparsePlan::compile(pattern);
    let m = plan.size();
    for level in available_levels() {
        let w = level.lanes();
        for batch in batch_widths(w) {
            let ws: Vec<Vec<i64>> = (0..batch)
                .map(|b| weights_for(pattern, 31 * b as u64 + m as u64))
                .collect();
            let want = scalar_reference(&plan, &ws);
            simd::force_level(Some(level));
            let mut got = vec![C64::ZERO; batch * m];
            plan.execute_batch_into(ws.iter().map(|v| v.as_slice()), &mut got);
            simd::force_level(None);
            assert_bits_eq(
                &got,
                &want,
                &format!("{label} m={m} level={} batch={batch}", level.name()),
            );
        }
    }
}

#[test]
fn all_dense_pattern_bit_identical_at_every_level_and_width() {
    let _guard = lock();
    for m in [8usize, 64, 256] {
        check_pattern(&SparsityPattern::dense(m), "dense");
    }
}

#[test]
fn single_nonzero_pattern_bit_identical_at_every_level_and_width() {
    let _guard = lock();
    let m = 128;
    for src in [0usize, 1, 37, m - 1] {
        check_pattern(&SparsityPattern::from_indices(m, [src]), "single");
    }
}

#[test]
fn cheetah_conv_pattern_bit_identical_at_every_level_and_width() {
    let _guard = lock();
    check_pattern(&cheetah_weight_pattern(128, 32, 8, 3), "cheetah-128");
    check_pattern(&cheetah_weight_pattern(512, 64, 8, 3), "cheetah-512");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_pattern_batch_equivalence(
        log_m in 2u32..9,
        batch in 0usize..11,
        seed in any::<u64>(),
        density in 0u64..100,
    ) {
        let _guard = lock();
        let m = 1usize << log_m;
        let live: Vec<usize> = (0..m)
            .filter(|&j| {
                let x = (j as u64 + 3).wrapping_mul(seed | 1);
                (x ^ (x >> 31)) % 100 < density
            })
            .collect();
        let pattern = SparsityPattern::from_indices(m, live);
        let plan = SparsePlan::compile(&pattern);
        let ws: Vec<Vec<i64>> = (0..batch).map(|b| weights_for(&pattern, seed ^ b as u64)).collect();
        let want = scalar_reference(&plan, &ws);
        let mut got = vec![C64::ZERO; batch * m];
        plan.execute_batch_into(ws.iter().map(|v| v.as_slice()), &mut got);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.re.to_bits(), w.re.to_bits());
            prop_assert_eq!(g.im.to_bits(), w.im.to_bits());
        }
    }
}
