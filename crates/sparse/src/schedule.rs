//! Mapping sparse transforms onto butterfly units.
//!
//! FLASH assigns one polynomial to one PE of 4 butterfly units (BUs); a BU
//! retires one butterfly (or one materialization multiply) per cycle. The
//! paper notes that a single dataflow is reused across all transforms of a
//! convolutional layer, so control overhead is amortized; we model a small
//! fixed per-stage synchronization cost.

use crate::symbolic::DataflowCounts;

/// Cycle-model parameters of one FFT processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeModel {
    /// Butterfly units per PE (4 in FLASH).
    pub bus_per_pe: u32,
    /// Pipeline fill / synchronization cycles charged per stage.
    pub stage_overhead: u32,
}

impl Default for PeModel {
    fn default() -> Self {
        Self {
            bus_per_pe: 4,
            stage_overhead: 2,
        }
    }
}

impl PeModel {
    /// Cycles for one *sparse* transform with the given counted dataflow.
    /// Work is multiplication-bound: each BU retires one counted
    /// multiplication per cycle.
    pub fn sparse_cycles(&self, counts: &DataflowCounts) -> u64 {
        let work = counts.mults();
        let stages = counts.m.trailing_zeros() as u64;
        div_ceil(work, self.bus_per_pe as u64) + stages * self.stage_overhead as u64
    }

    /// Cycles for one *dense* `m`-point transform on the same PE.
    pub fn dense_cycles(&self, m: usize) -> u64 {
        let log = m.trailing_zeros() as u64;
        let work = m as u64 / 2 * log;
        div_ceil(work, self.bus_per_pe as u64) + log * self.stage_overhead as u64
    }

    /// Cycles for a point-wise multiply-accumulate pass over `m` spectrum
    /// points with `units` parallel multipliers.
    pub fn pointwise_cycles(&self, m: usize, units: u32) -> u64 {
        div_ceil(m as u64, units as u64)
    }
}

#[inline]
fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::SparsityPattern;
    use crate::symbolic::analyze;

    #[test]
    fn dense_cycles_formula() {
        let pe = PeModel::default();
        // 2048-point dense FFT: 2048/2*11 = 11264 mults over 4 BUs + 11*2.
        assert_eq!(pe.dense_cycles(2048), 11264 / 4 + 22);
    }

    #[test]
    fn sparse_cycles_below_dense_for_sparse_patterns() {
        let pe = PeModel::default();
        let m = 2048;
        let p = SparsityPattern::from_indices(m, (0..9).map(|i| i * 64));
        let c = analyze(&p.bit_reversed());
        assert!(pe.sparse_cycles(&c) < pe.dense_cycles(m) / 4);
    }

    #[test]
    fn sparse_cycles_equal_dense_for_dense_pattern() {
        let pe = PeModel::default();
        let m = 256;
        let c = analyze(&SparsityPattern::dense(m));
        assert_eq!(pe.sparse_cycles(&c), pe.dense_cycles(m));
    }

    #[test]
    fn pointwise_cycles_rounds_up() {
        let pe = PeModel::default();
        assert_eq!(pe.pointwise_cycles(2048, 4), 512);
        assert_eq!(pe.pointwise_cycles(2049, 4), 513);
    }
}
