//! Functional sparse FFT execution.
//!
//! [`SparseFft`] runs the same abstract traversal as
//! [`crate::symbolic::analyze`] but carries concrete complex values, so the
//! skipping/merging dataflow can be validated bit-for-bit (in `f64`)
//! against the dense transform: the optimizations are exact rewrites, not
//! approximations.
//!
//! **Hot paths should not call this executor.** It re-derives the
//! skip/merge structure (branching on node states) on every invocation,
//! which is the right shape for validating the rewrite but not for
//! running it. When the sparsity pattern is known ahead of time — the
//! protocol weight transforms, where Cheetah encoding fixes one pattern
//! per layer — compile it once with [`crate::plan::SparsePlan`] and
//! execute the flat µop tape instead: same math, interned per pattern,
//! branch-predictable, and zero-alloc at steady state.

use flash_fft::C64_SCRATCH;
use flash_math::bitrev::log2_exact;
use flash_math::C64;

/// Concrete node state during sparse execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
enum Node {
    #[default]
    Zero,
    /// `ω^exp · inputs[src]`, materialized lazily.
    Scaled {
        src: u32,
        exp: u32,
    },
    Dense(C64),
}

flash_runtime::scratch_pool! {
    /// Thread-local scratch for the per-call node state vector.
    static NODE_SCRATCH: Node
}

/// A sparse FFT executor for `m`-point transforms with positive-exponent
/// twiddles (`ω = e^{+2πi/m}`), matching the negacyclic forward transform.
#[derive(Debug, Clone)]
pub struct SparseFft {
    m: usize,
    log_m: u32,
    /// `ω^j` for `j` in `0..m`.
    roots: Vec<C64>,
}

impl SparseFft {
    /// Creates an executor for `m`-point transforms.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two ≥ 2.
    pub fn new(m: usize) -> Self {
        let log_m = log2_exact(m);
        assert!(m >= 2);
        let roots = (0..m)
            .map(|j| C64::expi(2.0 * std::f64::consts::PI * j as f64 / m as f64))
            .collect();
        Self { m, log_m, roots }
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.m
    }

    /// Executes the sparse dataflow over *bit-reversed* input values.
    /// Zero entries drive skipping; isolated values ride merged chains.
    /// Output is in natural order, identical (up to `f64` rounding) to the
    /// dense positive-exponent FFT.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.size()`.
    pub fn transform_bitrev_input(&self, input: &[C64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; self.m];
        self.transform_bitrev_input_into(input, &mut out);
        out
    }

    /// [`SparseFft::transform_bitrev_input`] into a caller-provided
    /// output buffer. The node-state vector the skip/merge dataflow walks
    /// comes from the scratch pool, so repeated calls allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` or `out.len()` differ from `self.size()`.
    pub fn transform_bitrev_input_into(&self, input: &[C64], out: &mut [C64]) {
        assert_eq!(
            input.len(),
            self.m,
            "input length must equal transform size"
        );
        assert_eq!(out.len(), self.m, "output length must equal transform size");
        let m = self.m;
        let half_m = (m / 2) as u32;
        let mut state = NODE_SCRATCH.take(m);
        for (i, (slot, &x)) in state.iter_mut().zip(input).enumerate() {
            *slot = if x == C64::ZERO {
                Node::Zero
            } else {
                Node::Scaled {
                    src: i as u32,
                    exp: 0,
                }
            };
        }

        let value = |n: Node, input: &[C64]| -> C64 {
            match n {
                Node::Zero => C64::ZERO,
                Node::Scaled { src, exp } => input[src as usize] * self.roots[exp as usize],
                Node::Dense(v) => v,
            }
        };

        for s in 1..=self.log_m {
            let len = 1usize << s;
            let half = len / 2;
            let stride = (m / len) as u32;
            for block in (0..m).step_by(len) {
                for j in 0..half {
                    let t = j as u32 * stride;
                    let iu = block + j;
                    let iv = block + j + half;
                    let (u, v) = (state[iu], state[iv]);
                    match (u, v) {
                        (_, Node::Zero) => {
                            // skipping: duplicate u
                            state[iv] = u;
                        }
                        (Node::Zero, Node::Scaled { src, exp }) => {
                            // merging: accumulate the exponent
                            state[iu] = Node::Scaled {
                                src,
                                exp: (exp + t) % m as u32,
                            };
                            state[iv] = Node::Scaled {
                                src,
                                exp: (exp + t + half_m) % m as u32,
                            };
                        }
                        (Node::Zero, Node::Dense(x)) => {
                            let wv = x * self.roots[t as usize];
                            state[iu] = Node::Dense(wv);
                            state[iv] = Node::Dense(-wv);
                        }
                        (_, _) => {
                            let uv = value(u, input);
                            // fuse a scaled v chain into the butterfly twiddle
                            let wv = match v {
                                Node::Scaled { src, exp } => {
                                    input[src as usize]
                                        * self.roots[((exp + t) % m as u32) as usize]
                                }
                                Node::Dense(x) => x * self.roots[t as usize],
                                Node::Zero => unreachable!(),
                            };
                            state[iu] = Node::Dense(uv + wv);
                            state[iv] = Node::Dense(uv - wv);
                        }
                    }
                }
            }
        }

        for (o, &n) in out.iter_mut().zip(state.iter()) {
            *o = value(n, input);
        }
    }

    /// Convenience wrapper: natural-order input (bit-reverses internally).
    pub fn transform(&self, input: &[C64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; self.m];
        self.transform_into(input, &mut out);
        out
    }

    /// [`SparseFft::transform`] into a caller-provided output buffer; the
    /// bit-reversed staging copy comes from the scratch pool.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` or `out.len()` differ from `self.size()`.
    pub fn transform_into(&self, input: &[C64], out: &mut [C64]) {
        let mut v = C64_SCRATCH.take_copied(input);
        flash_math::bitrev::bit_reverse_permute(&mut v[..]);
        self.transform_bitrev_input_into(&v, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_fft::dft::Direction;
    use flash_fft::fft64::FftPlan;
    use rand::{Rng, SeedableRng};

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    fn dense_reference(input: &[C64]) -> Vec<C64> {
        let plan = FftPlan::new(input.len());
        let mut v = input.to_vec();
        plan.transform(&mut v, Direction::Positive);
        v
    }

    #[test]
    fn dense_input_matches_fft() {
        let m = 64;
        let sp = SparseFft::new(m);
        let x: Vec<C64> = (0..m)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
            .collect();
        assert!(max_err(&sp.transform(&x), &dense_reference(&x)) < 1e-9);
    }

    #[test]
    fn single_value_merging_matches_fft() {
        let m = 128;
        let sp = SparseFft::new(m);
        for src in [0usize, 1, 37, m - 1] {
            let mut x = vec![C64::ZERO; m];
            x[src] = C64::new(2.5, -1.25);
            assert!(
                max_err(&sp.transform(&x), &dense_reference(&x)) < 1e-10,
                "src={src}"
            );
        }
    }

    #[test]
    fn contiguous_prefix_skipping_matches_fft() {
        let m = 64;
        let sp = SparseFft::new(m);
        // Contiguous in the bit-reversed domain: populate positions whose
        // bit-reverse lands in 0..8.
        let mut x = vec![C64::ZERO; m];
        for (i, xi) in x.iter_mut().enumerate() {
            if flash_math::bitrev::bit_reverse(i, 6) < 8 {
                *xi = C64::new(i as f64, -(i as f64) / 2.0);
            }
        }
        assert!(max_err(&sp.transform(&x), &dense_reference(&x)) < 1e-9);
    }

    #[test]
    fn random_sparse_patterns_match_fft() {
        let m = 256;
        let sp = SparseFft::new(m);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for density in [1usize, 3, 9, 40, 200] {
            let mut x = vec![C64::ZERO; m];
            for _ in 0..density {
                let i = rng.gen_range(0..m);
                x[i] = C64::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0));
            }
            assert!(
                max_err(&sp.transform(&x), &dense_reference(&x)) < 1e-9,
                "density={density}"
            );
        }
    }

    #[test]
    fn all_zero_input_gives_zero_output() {
        let sp = SparseFft::new(32);
        let out = sp.transform(&vec![C64::ZERO; 32]);
        assert!(out.iter().all(|&v| v == C64::ZERO));
    }
}
