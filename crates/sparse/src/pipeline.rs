//! A cycle-level PE pipeline simulator.
//!
//! [`crate::schedule::PeModel`] estimates transform cycles with a single
//! work/BU division; this module *simulates* the stage-barrier pipeline a
//! real PE executes — butterflies of stage `s+1` read stage `s` outputs,
//! so each stage drains before the next starts — and thereby validates
//! (and bounds) the analytical estimate.

use crate::schedule::PeModel;
use crate::symbolic::StageProfile;

/// The simulated execution of one sparse transform on one PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineTrace {
    /// Cycles spent in each butterfly stage (work + overhead).
    pub stage_cycles: Vec<u64>,
    /// Cycles spent materializing merged chains at the outputs.
    pub output_cycles: u64,
    /// Total cycles.
    pub total: u64,
}

/// Simulates one transform given its per-stage multiplication profile.
///
/// Every counted multiplication occupies one BU for one cycle; a stage
/// with `w` multiplications over `B` BUs takes `⌈w/B⌉` cycles plus the
/// per-stage synchronization overhead (charged even for fully-skipped
/// stages: the controller still sequences them).
pub fn simulate_pe(profile: &StageProfile, pe: &PeModel) -> PipelineTrace {
    let b = pe.bus_per_pe as u64;
    let stage_cycles: Vec<u64> = profile
        .per_stage
        .iter()
        .map(|&w| w.div_ceil(b) + pe.stage_overhead as u64)
        .collect();
    let output_cycles = profile.output_materializations.div_ceil(b);
    let total = stage_cycles.iter().sum::<u64>() + output_cycles;
    PipelineTrace {
        stage_cycles,
        output_cycles,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::SparsityPattern;
    use crate::symbolic::{analyze_with_profile, DataflowCounts};

    fn profile_of(m: usize, idx: &[usize]) -> (DataflowCounts, StageProfile) {
        analyze_with_profile(&SparsityPattern::from_indices(m, idx.iter().copied()).bit_reversed())
    }

    #[test]
    fn profile_total_matches_counts() {
        for idx in [
            vec![0usize],
            vec![0, 1, 2, 3],
            (0..64).step_by(5).collect::<Vec<_>>(),
        ] {
            let (counts, profile) = profile_of(256, &idx);
            assert_eq!(profile.total(), counts.mults(), "{idx:?}");
            assert_eq!(profile.per_stage.len(), 8);
        }
    }

    #[test]
    fn simulation_brackets_the_analytical_estimate() {
        let pe = PeModel::default();
        for density in [1usize, 4, 16, 64, 256] {
            let idx: Vec<usize> = (0..density).map(|i| (i * 2039) % 2048).collect();
            let (counts, profile) = profile_of(2048, &idx);
            let est = pe.sparse_cycles(&counts);
            let sim = simulate_pe(&profile, &pe).total;
            // the stage-barrier simulation can only be slower than the
            // ideal work/BU estimate, and never by more than one extra
            // BU-round per stage
            assert!(
                sim >= est.saturating_sub(1),
                "density {density}: sim {sim} < est {est}"
            );
            let slack = profile.per_stage.len() as u64 + 1;
            assert!(
                sim <= est + slack,
                "density {density}: sim {sim} too far above est {est}"
            );
        }
    }

    #[test]
    fn dense_pattern_simulation_matches_formula() {
        let pe = PeModel::default();
        let (counts, profile) = analyze_with_profile(&SparsityPattern::dense(256));
        let sim = simulate_pe(&profile, &pe);
        // dense: every stage runs m/2 butterflies
        assert!(sim.stage_cycles.iter().all(|&c| c == 128 / 4 + 2));
        assert_eq!(sim.output_cycles, 0);
        assert_eq!(sim.total, pe.sparse_cycles(&counts));
    }

    #[test]
    fn merged_chains_cost_only_output_cycles() {
        let pe = PeModel::default();
        let (_, profile) = profile_of(64, &[7]);
        let sim = simulate_pe(&profile, &pe);
        assert!(
            profile.per_stage.iter().all(|&w| w == 0),
            "{:?}",
            profile.per_stage
        );
        assert!(sim.output_cycles > 0);
    }
}
