//! Compiled sparse-transform plans: the skip/merge dataflow lowered to a
//! flat µop tape.
//!
//! [`crate::executor::SparseFft`] interprets the butterfly network one
//! node at a time, re-deriving the skip/merge structure from the input
//! values on every call. But the structure depends only on the *sparsity
//! pattern*, which Cheetah's coefficient encoding fixes per layer: every
//! k×k kernel placement of a conv layer produces the same pattern. This
//! module therefore compiles the symbolic `Zero ⊑ Scaled ⊑ Dense`
//! traversal **once per pattern** into a flat `Vec` of fixed-size µops
//! executed by a tight, branch-predictable interpreter:
//!
//! * [`Uop::Twist`] — fold one real coefficient pair into a complex slot
//!   and multiply by a single root that combines the negacyclic twist
//!   with an entire merged twiddle chain (the paper's **merging**,
//!   resolved at compile time);
//! * [`Uop::Butterfly`] / [`Uop::AddSub`] / [`Uop::Rotate`] — the
//!   butterflies that actually execute;
//! * [`Uop::Copy`] / [`Uop::Negate`] / [`Uop::Zero`] — the free wires of
//!   the paper's **skipping**.
//!
//! The output buffer doubles as the slot arena (slot *i* holds network
//! position *i*), so execution touches no memory beyond the tape, the
//! interned root table, the input and the output — zero heap allocations
//! at steady state, proven by `crates/fft/tests/zero_alloc.rs`.
//!
//! Plans are interned process-wide per `(m, pattern)` via
//! [`flash_runtime::Interner`] ([`SparsePlan::shared`]), and a batched
//! entry point ([`SparsePlan::execute_batch_into`]) runs one tape over
//! many weight polynomials sharing a pattern. The protocol stack
//! (`flash_he::PolyMulBackend`, `flash_2pc::protocol::ConvProtocol`)
//! selects a plan whenever the plaintext's pattern is known and
//! [`SparsePlan::worthwhile`] holds, falling back to the dense transform
//! bit-for-bit otherwise.

use crate::pattern::SparsityPattern;
use crate::symbolic::{analyze_cached, DataflowCounts};
use flash_fft::simd::{self, C64x, F64x, SimdLevel, MAX_LANES};
use flash_math::bitrev::{bit_reverse, log2_exact};
use flash_math::C64;
use flash_runtime::{CacheStats, Interner, F64_SCRATCH};
use std::sync::Arc;

/// One fixed-size instruction of a compiled sparse transform.
///
/// Slot indices address the output buffer (the arena); `src` of
/// [`Uop::Twist`] addresses the *real* input polynomial (the partner
/// coefficient `src + N/2` is implied); root indices address the
/// interned table of `e^{iπk/N}` for `k < 2N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uop {
    /// `out[dst] = (w[src] + i·w[src + N/2]) · root[exp]`: fold, twist
    /// and an accumulated merge-chain twiddle in one multiplication.
    Twist { src: u32, dst: u32, exp: u32 },
    /// `(out[i], out[j]) = (out[i] + root[tw]·out[j], out[i] − root[tw]·out[j])`.
    Butterfly { i: u32, j: u32, tw: u32 },
    /// Trivial-twiddle butterfly: `(out[i], out[j]) = (out[i]+out[j], out[i]−out[j])`.
    AddSub { i: u32, j: u32 },
    /// Butterfly with a dead first operand:
    /// `out[i] = root[tw]·out[j]; out[j] = −out[i]`.
    Rotate { i: u32, j: u32, tw: u32 },
    /// `out[dst] = out[src]` (skipping: a zero partner duplicates).
    Copy { src: u32, dst: u32 },
    /// `out[dst] = −out[src]`.
    Negate { src: u32, dst: u32 },
    /// `out[dst] = 0` (network output that is identically zero).
    Zero { dst: u32 },
}

/// Compile-time node state; mirrors the lattice of
/// [`crate::symbolic`], but `src` here is the bit-reversed slot index of
/// the live input so the compiler can recover its natural fold index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    Zero,
    Scaled { src: u32, exp: u32 },
    Dense,
}

/// A compiled plan for the forward sparse negacyclic weight transform of
/// ring degree `N = 2m`: `N` real coefficients (with the given sparsity
/// pattern in the folded `m`-slot domain) → `m` complex evaluations,
/// numerically matching [`flash_fft::NegacyclicFft::forward`].
#[derive(Debug, Clone)]
pub struct SparsePlan {
    /// Ring degree `N`.
    n: usize,
    /// Transform size `m = N/2`.
    m: usize,
    /// The flat instruction tape, executed front to back.
    tape: Vec<Uop>,
    /// `e^{iπk/N}` for `k < 2N`, interned per degree.
    roots: Arc<Vec<C64>>,
    /// Symbolic counts of the pattern (the paper's accounting).
    counts: DataflowCounts,
    /// Complex multiplications the tape actually executes (µop-level;
    /// charges trivial roots and duplicated chains the symbolic dedup
    /// shares in hardware, so `muls >= counts.mults()`).
    muls: u64,
}

/// Process-wide root tables, one per ring degree.
static ROOT_TABLES: Interner<usize, Vec<C64>> = Interner::bounded(64);

/// Process-wide compiled-plan cache keyed by the pattern digest.
static PLAN_CACHE: Interner<(usize, Vec<u64>), SparsePlan> = Interner::bounded(256);

fn root_table(n: usize) -> Arc<Vec<C64>> {
    ROOT_TABLES.intern_with(n, |&n| {
        (0..2 * n)
            .map(|k| C64::expi(std::f64::consts::PI * k as f64 / n as f64))
            .collect()
    })
}

impl SparsePlan {
    /// Compiles the tape for a fold-domain sparsity pattern in *natural*
    /// order (`m` slots; slot `j` is live when weight coefficient `j` or
    /// `j + m` can be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if the pattern length is not a power of two ≥ 2.
    pub fn compile(pattern_natural: &SparsityPattern) -> Self {
        let m = pattern_natural.len();
        assert!(m >= 2, "transform must have at least 2 points");
        let log_m = log2_exact(m);
        let n = 2 * m;
        let br = pattern_natural.bit_reversed();
        let counts = analyze_cached(&br).0;

        let mut state: Vec<CState> = (0..m)
            .map(|i| {
                if br.get(i) {
                    CState::Scaled {
                        src: i as u32,
                        exp: 0,
                    }
                } else {
                    CState::Zero
                }
            })
            .collect();

        // Natural fold index of a bit-reversed live slot, and the root
        // index combining its twist `ω_{2N}^j` with a merged butterfly
        // chain `ω_m^exp = ω_{2N}^{4·exp}`.
        let natural = |src: u32| bit_reverse(src as usize, log_m);
        let chain_root = |src: u32, exp: u32| ((natural(src) + 4 * exp as usize) % (2 * n)) as u32;

        let mut tape: Vec<Uop> = Vec::new();
        let mut muls = 0u64;
        let m32 = m as u32;
        let half_m = m32 / 2;

        for s in 1..=log_m {
            let len = 1usize << s;
            let half = len / 2;
            let stride = (m / len) as u32;
            for block in (0..m).step_by(len) {
                for j in 0..half {
                    let t = j as u32 * stride;
                    let iu = block + j;
                    let iv = block + j + half;
                    let (u, v) = (state[iu], state[iv]);
                    match (u, v) {
                        // Skipping: zero second operand → duplicate u.
                        (_, CState::Zero) => {
                            if u == CState::Dense {
                                tape.push(Uop::Copy {
                                    src: iu as u32,
                                    dst: iv as u32,
                                });
                            }
                            state[iv] = u;
                        }
                        // Merging: fold the twiddle into the chain.
                        (CState::Zero, CState::Scaled { src, exp }) => {
                            state[iu] = CState::Scaled {
                                src,
                                exp: (exp + t) % m32,
                            };
                            state[iv] = CState::Scaled {
                                src,
                                exp: (exp + t + half_m) % m32,
                            };
                        }
                        // Dead first operand: outputs are ±ω^t·v.
                        (CState::Zero, CState::Dense) => {
                            if t == 0 {
                                tape.push(Uop::Copy {
                                    src: iv as u32,
                                    dst: iu as u32,
                                });
                                tape.push(Uop::Negate {
                                    src: iu as u32,
                                    dst: iv as u32,
                                });
                            } else {
                                tape.push(Uop::Rotate {
                                    i: iu as u32,
                                    j: iv as u32,
                                    tw: 4 * t,
                                });
                                muls += 1;
                            }
                            state[iu] = CState::Dense;
                            state[iv] = CState::Dense;
                        }
                        // Both operands live: a real butterfly. A scaled v
                        // fuses its chain into the butterfly twiddle; a
                        // scaled u materializes first.
                        (_, _) => {
                            if let CState::Scaled { src, exp } = u {
                                tape.push(Uop::Twist {
                                    src: natural(src) as u32,
                                    dst: iu as u32,
                                    exp: chain_root(src, exp),
                                });
                                muls += 1;
                            }
                            match v {
                                CState::Scaled { src, exp } => {
                                    tape.push(Uop::Twist {
                                        src: natural(src) as u32,
                                        dst: iv as u32,
                                        exp: chain_root(src, (exp + t) % m32),
                                    });
                                    muls += 1;
                                    tape.push(Uop::AddSub {
                                        i: iu as u32,
                                        j: iv as u32,
                                    });
                                }
                                CState::Dense => {
                                    if t == 0 {
                                        tape.push(Uop::AddSub {
                                            i: iu as u32,
                                            j: iv as u32,
                                        });
                                    } else {
                                        tape.push(Uop::Butterfly {
                                            i: iu as u32,
                                            j: iv as u32,
                                            tw: 4 * t,
                                        });
                                        muls += 1;
                                    }
                                }
                                CState::Zero => unreachable!("matched above"),
                            }
                            state[iu] = CState::Dense;
                            state[iv] = CState::Dense;
                        }
                    }
                }
            }
        }

        // Network outputs: merged chains materialize, dead slots zero.
        for (i, &st) in state.iter().enumerate() {
            match st {
                CState::Dense => {}
                CState::Scaled { src, exp } => {
                    tape.push(Uop::Twist {
                        src: natural(src) as u32,
                        dst: i as u32,
                        exp: chain_root(src, exp),
                    });
                    muls += 1;
                }
                CState::Zero => tape.push(Uop::Zero { dst: i as u32 }),
            }
        }

        tape.shrink_to_fit();
        Self {
            n,
            m,
            tape,
            roots: root_table(n),
            counts,
            muls,
        }
    }

    /// Like [`SparsePlan::compile`], but interned process-wide: every
    /// call with an identical `(m, mask)` returns the same `Arc` without
    /// recompiling. All kernel placements of one conv layer (and all
    /// layers sharing a fold pattern) hit the same plan.
    ///
    /// # Panics
    ///
    /// Panics if the pattern length is not a power of two ≥ 2.
    pub fn shared(pattern_natural: &SparsityPattern) -> Arc<Self> {
        PLAN_CACHE.intern_with(pattern_natural.packed_words(), |_| {
            SparsePlan::compile(pattern_natural)
        })
    }

    /// Ring degree `N` of the weight polynomials this plan transforms.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Transform size `m = N/2` (length of the output spectrum).
    #[inline]
    pub fn size(&self) -> usize {
        self.m
    }

    /// Number of µops on the tape.
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// Bytes the tape occupies (µops only; the root table is shared).
    pub fn tape_bytes(&self) -> usize {
        self.tape.len() * std::mem::size_of::<Uop>()
    }

    /// Complex multiplications one execution of the tape performs.
    pub fn muls(&self) -> u64 {
        self.muls
    }

    /// Symbolic dataflow counts of the pattern (the paper's accounting).
    pub fn counts(&self) -> &DataflowCounts {
        &self.counts
    }

    /// Complex multiplications of the dense transform this plan replaces:
    /// `m` fold/twist products plus `m/2·log2 m` butterflies.
    pub fn dense_muls(&self) -> u64 {
        self.m as u64 + self.counts.dense_mults()
    }

    /// The dense-fallback rule: a plan is worth running when its tape
    /// performs at most 75 % of the dense transform's multiplications.
    /// Measured, the interpreter breaks even with the dense recursion at
    /// a mult ratio around 0.8 (an all-dense tape still drops the trivial
    /// `ω⁰` butterflies, ratio ≈ 0.8, and roughly ties), so 3/4 leaves a
    /// margin; near-dense patterns stay on the dense path, which also
    /// keeps zero-sparsity behaviour bit-for-bit unchanged.
    pub fn worthwhile(&self) -> bool {
        self.muls * 4 <= self.dense_muls() * 3
    }

    /// Runs the tape over one signed weight polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != N` or `out.len() != N/2`.
    pub fn execute_into(&self, w: &[i64], out: &mut [C64]) {
        assert_eq!(w.len(), self.n, "weight length must equal ring degree");
        self.run_tape(|i| w[i] as f64, out);
    }

    /// Runs the tape over one real-coefficient polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != N` or `out.len() != N/2`.
    pub fn execute_f64_into(&self, w: &[f64], out: &mut [C64]) {
        assert_eq!(w.len(), self.n, "weight length must equal ring degree");
        self.run_tape(|i| w[i], out);
    }

    /// Batched entry point: runs the tape over blocks of
    /// `W = flash_fft::simd::lanes()` polynomials at once in a
    /// lane-interleaved structure-of-arrays arena, writing consecutive
    /// `m`-slot chunks of `out`. One tape fetch and one root load serve
    /// all `W` lanes of a block — the per-layer case where every kernel
    /// placement shares a pattern. Remainder lanes are zero-padded at the
    /// `Twist` loads (the only µop that reads the input), and per lane
    /// the arithmetic sequence is exactly [`SparsePlan::execute_into`],
    /// so outputs are bit-identical at every lane width.
    ///
    /// # Panics
    ///
    /// Panics if any polynomial length differs from `N` or `out.len()`
    /// is not `batch · N/2`.
    pub fn execute_batch_into<'a, I>(&self, ws: I, out: &mut [C64])
    where
        I: IntoIterator<Item = &'a [i64]>,
    {
        assert_eq!(
            out.len() % self.m,
            0,
            "output length must be a multiple of N/2"
        );
        let level = simd::level();
        let w = level.lanes();
        let mut used = 0usize;
        if w == 1 {
            // True scalar fallback: one tape pass per polynomial.
            let mut chunks = out.chunks_exact_mut(self.m);
            for poly in ws {
                let chunk = chunks.next().expect("output buffer shorter than the batch");
                self.execute_into(poly, chunk);
                used += 1;
            }
        } else {
            let mut lanes: [&[i64]; MAX_LANES] = [&[]; MAX_LANES];
            let mut filled = 0usize;
            for poly in ws {
                assert_eq!(poly.len(), self.n, "weight length must equal ring degree");
                lanes[filled] = poly;
                filled += 1;
                if filled == w {
                    let end = (used + filled) * self.m;
                    assert!(end <= out.len(), "output buffer shorter than the batch");
                    self.run_tape_soa_dispatch(
                        level,
                        &lanes[..filled],
                        &mut out[used * self.m..end],
                    );
                    used += filled;
                    filled = 0;
                }
            }
            if filled > 0 {
                let end = (used + filled) * self.m;
                assert!(end <= out.len(), "output buffer shorter than the batch");
                self.run_tape_soa_dispatch(level, &lanes[..filled], &mut out[used * self.m..end]);
                used += filled;
            }
        }
        assert_eq!(
            used * self.m,
            out.len(),
            "output buffer longer than the batch"
        );
    }

    /// Routes a block of up to `lanes()` polynomials to the SoA
    /// interpreter monomorphized for the dispatched feature level.
    /// Narrow tails take the narrowest kernel that still covers them
    /// (see [`SimdLevel::narrowed`]); a single polynomial skips the SoA
    /// arena for one scalar tape pass.
    fn run_tape_soa_dispatch(&self, level: SimdLevel, ws: &[&[i64]], out: &mut [C64]) {
        if let [w] = ws {
            self.execute_into(w, out);
            return;
        }
        match level.narrowed(ws.len()) {
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => unsafe { self.run_tape_soa_avx512(ws, out) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { self.run_tape_soa_avx2(ws, out) },
            _ => self.run_tape_soa::<2>(ws, out),
        }
    }

    /// AVX2 monomorphization of the SoA interpreter (`W = 4`).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (guaranteed by the `simd::level`
    /// dispatch in [`SparsePlan::run_tape_soa_dispatch`]).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn run_tape_soa_avx2(&self, ws: &[&[i64]], out: &mut [C64]) {
        self.run_tape_soa::<4>(ws, out);
    }

    /// AVX-512 monomorphization of the SoA interpreter (`W = 8`).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX-512F/DQ (guaranteed by the dispatch).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq")]
    unsafe fn run_tape_soa_avx512(&self, ws: &[&[i64]], out: &mut [C64]) {
        self.run_tape_soa::<8>(ws, out);
    }

    /// One tape pass over `ws.len() ≤ W` polynomials in a lane-interleaved
    /// SoA arena (slot `i` = `[re × W | im × W]` at offset `i·2W`, see
    /// [`flash_fft::simd`]). `Twist` is the only µop that touches the
    /// input, so zero-padding its loads covers the remainder lanes; all
    /// other µops are slot-to-slot and operate on all `W` lanes at once.
    #[inline(always)]
    fn run_tape_soa<const W: usize>(&self, ws: &[&[i64]], out: &mut [C64]) {
        let m = self.m;
        let used = ws.len();
        debug_assert!(0 < used && used <= W);
        debug_assert_eq!(out.len(), used * m);
        let roots: &[C64] = &self.roots;
        let mut soa = F64_SCRATCH.take(2 * W * m);
        for &op in &self.tape {
            match op {
                Uop::Twist { src, dst, exp } => {
                    let s = src as usize;
                    let mut re = [0.0f64; W];
                    let mut im = [0.0f64; W];
                    for (l, poly) in ws.iter().enumerate() {
                        re[l] = poly[s] as f64;
                        im[l] = poly[s + m] as f64;
                    }
                    let c = C64x {
                        re: F64x(re),
                        im: F64x(im),
                    };
                    c.mul_c(roots[exp as usize])
                        .store_slot(&mut soa, dst as usize);
                }
                Uop::Butterfly { i, j, tw } => {
                    let wv = C64x::<W>::load_slot(&soa, j as usize).mul_c(roots[tw as usize]);
                    let u = C64x::<W>::load_slot(&soa, i as usize);
                    u.add(wv).store_slot(&mut soa, i as usize);
                    u.sub(wv).store_slot(&mut soa, j as usize);
                }
                Uop::AddSub { i, j } => {
                    let v = C64x::<W>::load_slot(&soa, j as usize);
                    let u = C64x::<W>::load_slot(&soa, i as usize);
                    u.add(v).store_slot(&mut soa, i as usize);
                    u.sub(v).store_slot(&mut soa, j as usize);
                }
                Uop::Rotate { i, j, tw } => {
                    let wv = C64x::<W>::load_slot(&soa, j as usize).mul_c(roots[tw as usize]);
                    wv.store_slot(&mut soa, i as usize);
                    wv.neg().store_slot(&mut soa, j as usize);
                }
                Uop::Copy { src, dst } => {
                    C64x::<W>::load_slot(&soa, src as usize).store_slot(&mut soa, dst as usize);
                }
                Uop::Negate { src, dst } => {
                    C64x::<W>::load_slot(&soa, src as usize)
                        .neg()
                        .store_slot(&mut soa, dst as usize);
                }
                Uop::Zero { dst } => C64x::<W>::zero().store_slot(&mut soa, dst as usize),
            }
        }
        for j in 0..m {
            let base = j * 2 * W;
            for (l, chunk) in out.chunks_exact_mut(m).enumerate() {
                chunk[j] = C64::new(soa[base + l], soa[base + W + l]);
            }
        }
    }

    /// The interpreter: `out` doubles as the slot arena, every op writes
    /// before any later op reads, so no staging buffer exists.
    #[inline]
    fn run_tape(&self, load: impl Fn(usize) -> f64, out: &mut [C64]) {
        assert_eq!(out.len(), self.m, "output length must be N/2");
        let half = self.m;
        let roots: &[C64] = &self.roots;
        for &op in &self.tape {
            match op {
                Uop::Twist { src, dst, exp } => {
                    let s = src as usize;
                    out[dst as usize] = C64::new(load(s), load(s + half)) * roots[exp as usize];
                }
                Uop::Butterfly { i, j, tw } => {
                    let wv = out[j as usize] * roots[tw as usize];
                    let u = out[i as usize];
                    out[i as usize] = u + wv;
                    out[j as usize] = u - wv;
                }
                Uop::AddSub { i, j } => {
                    let v = out[j as usize];
                    let u = out[i as usize];
                    out[i as usize] = u + v;
                    out[j as usize] = u - v;
                }
                Uop::Rotate { i, j, tw } => {
                    let wv = out[j as usize] * roots[tw as usize];
                    out[i as usize] = wv;
                    out[j as usize] = -wv;
                }
                Uop::Copy { src, dst } => out[dst as usize] = out[src as usize],
                Uop::Negate { src, dst } => out[dst as usize] = -out[src as usize],
                Uop::Zero { dst } => out[dst as usize] = C64::ZERO,
            }
        }
    }
}

/// Aggregate metrics of the process-wide plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheMetrics {
    /// Plans currently interned.
    pub plans: usize,
    /// Total µops across all interned tapes.
    pub uops: u64,
    /// Total bytes the interned tapes occupy.
    pub tape_bytes: u64,
    /// Hit/miss counters of the interner.
    pub stats: CacheStats,
}

/// Hit/miss counters of the [`SparsePlan::shared`] interner.
pub fn plan_cache_stats() -> CacheStats {
    PLAN_CACHE.stats()
}

/// Snapshot of the plan cache: compiled plans, tape sizes, hit rate.
pub fn plan_cache_metrics() -> PlanCacheMetrics {
    let (uops, tape_bytes) = PLAN_CACHE.fold_values((0u64, 0u64), |(u, b), p| {
        (u + p.tape_len() as u64, b + p.tape_bytes() as u64)
    });
    PlanCacheMetrics {
        plans: PLAN_CACHE.len(),
        uops,
        tape_bytes,
        stats: PLAN_CACHE.stats(),
    }
}

/// Drops all interned plans and resets the counters.
pub fn clear_plan_cache() {
    PLAN_CACHE.clear()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_fft::NegacyclicFft;

    fn max_err(a: &[C64], b: &[C64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    fn weights_for(pattern: &SparsityPattern, seed: u64) -> Vec<i64> {
        let n = 2 * pattern.len();
        let mut w = vec![0i64; n];
        for (j, live) in pattern.mask().iter().enumerate() {
            if *live {
                let v = ((j as u64).wrapping_mul(seed | 1) % 15) as i64 - 7;
                w[j] = v;
                w[j + pattern.len()] = -v + 1;
            }
        }
        w
    }

    fn check_against_dense(pattern: &SparsityPattern, seed: u64) {
        let n = 2 * pattern.len();
        let plan = SparsePlan::compile(pattern);
        let fft = NegacyclicFft::new(n);
        let w = weights_for(pattern, seed);
        let wf: Vec<f64> = w.iter().map(|&x| x as f64).collect();
        let want = fft.forward(&wf);
        let mut got = vec![C64::ZERO; n / 2];
        plan.execute_into(&w, &mut got);
        let scale = want.iter().map(|c| c.abs()).fold(1.0, f64::max);
        assert!(
            max_err(&got, &want) < 1e-9 * scale,
            "plan diverged from dense forward (m={})",
            pattern.len()
        );
    }

    #[test]
    fn uops_are_fixed_size() {
        assert_eq!(std::mem::size_of::<Uop>(), 16);
    }

    #[test]
    fn dense_pattern_matches_dense_transform() {
        for m in [2usize, 8, 64, 256] {
            check_against_dense(&SparsityPattern::dense(m), 3);
        }
    }

    #[test]
    fn single_nonzero_matches_dense_transform() {
        let m = 128;
        for src in [0usize, 1, 37, m - 1] {
            check_against_dense(&SparsityPattern::from_indices(m, [src]), src as u64 + 1);
        }
    }

    #[test]
    fn conv_patterns_match_dense_transform() {
        // Cheetah 3x3-kernel patterns at several tile geometries.
        for (m, hw, rs, k) in [(128usize, 32, 8, 3), (512, 64, 8, 3), (1024, 256, 16, 3)] {
            let p = crate::pattern::cheetah_weight_pattern(m, hw, rs, k);
            check_against_dense(&p, 11);
        }
    }

    #[test]
    fn empty_pattern_zeroes_the_spectrum() {
        let m = 64;
        let plan = SparsePlan::compile(&SparsityPattern::from_indices(m, []));
        let mut out = vec![C64::new(3.0, 4.0); m];
        plan.execute_into(&vec![0i64; 2 * m], &mut out);
        assert!(out.iter().all(|&c| c == C64::ZERO));
        assert_eq!(plan.muls(), 0);
    }

    #[test]
    fn sparse_tape_is_much_smaller_than_dense() {
        // The paper's >86 % reduction on encoded weights: 9 live
        // coefficients of 2048 slots leave a tiny tape.
        let p = crate::pattern::cheetah_weight_pattern(2048, 2048, 32, 3);
        assert_eq!(p.count(), 9);
        let plan = SparsePlan::compile(&p);
        assert!(plan.worthwhile());
        assert!(
            (plan.muls() as f64) < 0.14 * plan.dense_muls() as f64,
            "tape muls {} vs dense {}",
            plan.muls(),
            plan.dense_muls()
        );
        check_against_dense(&p, 7);
    }

    #[test]
    fn dense_pattern_is_not_worthwhile() {
        let plan = SparsePlan::compile(&SparsityPattern::dense(256));
        assert!(!plan.worthwhile());
    }

    #[test]
    fn shared_plans_are_interned() {
        let p = SparsityPattern::from_indices(64, [1, 5, 9]);
        let a = SparsePlan::shared(&p);
        let b = SparsePlan::shared(&p);
        assert!(Arc::ptr_eq(&a, &b));
        let metrics = plan_cache_metrics();
        assert!(metrics.plans >= 1);
        assert!(metrics.tape_bytes >= metrics.uops * 16);
    }

    #[test]
    fn batch_matches_single_executions() {
        let p = crate::pattern::cheetah_weight_pattern(128, 32, 8, 3);
        let plan = SparsePlan::compile(&p);
        let ws: Vec<Vec<i64>> = (0..4).map(|s| weights_for(&p, 100 + s)).collect();
        let m = plan.size();
        let mut batched = vec![C64::ZERO; 4 * m];
        plan.execute_batch_into(ws.iter().map(|w| w.as_slice()), &mut batched);
        for (i, w) in ws.iter().enumerate() {
            let mut single = vec![C64::ZERO; m];
            plan.execute_into(w, &mut single);
            assert_eq!(&batched[i * m..][..m], &single[..], "batch lane {i}");
        }
    }

    #[test]
    #[should_panic(expected = "shorter than the batch")]
    fn batch_output_too_short_panics() {
        let p = SparsityPattern::dense(8);
        let plan = SparsePlan::compile(&p);
        let w = [0i64; 16];
        let mut out = vec![C64::ZERO; 8];
        plan.execute_batch_into([&w[..], &w[..]], &mut out);
    }
}
