//! Symbolic multiplication-count analysis of the sparse butterfly network.
//!
//! Every node of the `m`-point network carries an abstract state:
//!
//! * `Zero` — the value is identically zero;
//! * `Scaled { src, exp }` — the value is `ω^exp · x_src` for a single
//!   live input slot `src` (`ω = e^{+2πi/m}`, exponent mod `m`; the
//!   negation `ω^{exp+m/2}` is folded into the exponent);
//! * `Dense` — a general value.
//!
//! Zero-propagation through a butterfly realizes the paper's **skipping**
//! (a zero second operand turns the butterfly into a pair of copies);
//! scaled-propagation realizes **merging** (twiddle exponents accumulate
//! and the chain collapses into one multiplication when the value finally
//! meets a non-zero addend or the network output).
//!
//! Counting conventions follow the paper's accounting: a dense `m`-point
//! network costs `m/2 · log2 m` multiplications (one per executed
//! butterfly, trivial twiddles included); a merged chain costs one
//! multiplication per *distinct* `(src, exp)` group, with negations and
//! duplications free. Unlike the paper's Example 4.2 we do not charge for
//! `ω^0` materializations (they are wires), which makes our counts lower
//! by at most one per source.

use crate::pattern::SparsityPattern;
use flash_math::bitrev::log2_exact;
use flash_runtime::{CacheStats, Interner};
use std::collections::HashSet;
use std::sync::Arc;

/// Node state in the abstract interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Zero,
    Scaled { src: u32, exp: u32 },
    Dense,
}

/// Operation counts of one sparse transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataflowCounts {
    /// Transform size `m`.
    pub m: u64,
    /// Butterflies actually executed (each counted as one complex
    /// multiplication, matching the paper's dense accounting).
    pub executed_butterflies: u64,
    /// Materializations of merged chains (distinct non-trivial
    /// `(src, exp)` groups; negation and `ω^0` are free).
    pub materializations: u64,
    /// Complex additions/subtractions performed.
    pub adds: u64,
    /// Butterflies skipped because the second operand was zero
    /// (duplications) or both operands were zero.
    pub skipped_butterflies: u64,
}

impl DataflowCounts {
    /// Total complex multiplications of the sparse dataflow.
    pub fn mults(&self) -> u64 {
        self.executed_butterflies + self.materializations
    }

    /// Multiplications of the classical dense dataflow,
    /// `m/2 · log2 m`.
    pub fn dense_mults(&self) -> u64 {
        let log = self.m.trailing_zeros() as u64;
        self.m / 2 * log
    }

    /// Fraction of dense multiplications eliminated
    /// (the paper reports > 86 % for encoded weight polynomials).
    pub fn reduction(&self) -> f64 {
        1.0 - self.mults() as f64 / self.dense_mults() as f64
    }
}

/// Per-stage multiplication profile of a sparse transform (stage index 0
/// is the first butterfly stage; the final entry holds the output-side
/// materializations of merged chains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProfile {
    /// Counted multiplications per butterfly stage.
    pub per_stage: Vec<u64>,
    /// Materializations charged at the network outputs.
    pub output_materializations: u64,
}

impl StageProfile {
    /// Total multiplications (must equal [`DataflowCounts::mults`]).
    pub fn total(&self) -> u64 {
        self.per_stage.iter().sum::<u64>() + self.output_materializations
    }
}

/// Like [`analyze`] but additionally returns where in the pipeline each
/// multiplication happens — the input of the cycle-accurate PE simulator.
pub fn analyze_with_profile(pattern_bitrev: &SparsityPattern) -> (DataflowCounts, StageProfile) {
    analyze_inner(pattern_bitrev)
}

/// Analyzes the butterfly network for an input sparsity pattern given in
/// *bit-reversed* order (the order in which stage 1 consumes slots).
///
/// # Panics
///
/// Panics if the pattern length is not a power of two ≥ 2.
pub fn analyze(pattern_bitrev: &SparsityPattern) -> DataflowCounts {
    analyze_inner(pattern_bitrev).0
}

/// Canonical digest of a sparsity pattern (see
/// [`SparsityPattern::packed_words`]): two patterns share a key iff their
/// masks are identical.
type PatternKey = (usize, Vec<u64>);

/// Process-wide memo of symbolic analyses, keyed by the pattern digest.
static ANALYSIS_CACHE: Interner<PatternKey, (DataflowCounts, StageProfile)> =
    Interner::bounded(256);

/// Memoized [`analyze_with_profile`]: the symbolic interpretation runs
/// once per distinct bit-reversed pattern per process, and every later
/// call with an identical mask returns the same `Arc`. Networks repeat
/// heavily across layers of one CNN (all layers of a stage share a
/// fold pattern), so this converts the per-layer `O(m log m)` sweep of
/// `run_network` into a lookup.
///
/// # Panics
///
/// Panics if the pattern length is not a power of two ≥ 2.
pub fn analyze_cached(pattern_bitrev: &SparsityPattern) -> Arc<(DataflowCounts, StageProfile)> {
    ANALYSIS_CACHE.intern_with(pattern_bitrev.packed_words(), |_| {
        analyze_inner(pattern_bitrev)
    })
}

/// Hit/miss counters of the [`analyze_cached`] memo.
pub fn analysis_cache_stats() -> CacheStats {
    ANALYSIS_CACHE.stats()
}

/// Drops all memoized analyses and resets the counters.
pub fn clear_analysis_cache() {
    ANALYSIS_CACHE.clear()
}

fn analyze_inner(pattern_bitrev: &SparsityPattern) -> (DataflowCounts, StageProfile) {
    let m = pattern_bitrev.len();
    assert!(m >= 2, "network must have at least 2 points");
    let log_m = log2_exact(m);
    let mut counts = DataflowCounts {
        m: m as u64,
        ..DataflowCounts::default()
    };

    let mut state: Vec<State> = (0..m)
        .map(|i| {
            if pattern_bitrev.get(i) {
                State::Scaled {
                    src: i as u32,
                    exp: 0,
                }
            } else {
                State::Zero
            }
        })
        .collect();

    // Deduplicated materialization groups: (src, exp mod m/2); the
    // negated pair shares hardware.
    let mut groups: HashSet<(u32, u32)> = HashSet::new();
    let half_m = (m / 2) as u32;

    let mut materialize = |st: State, counts: &mut DataflowCounts| -> State {
        if let State::Scaled { src, exp } = st {
            let key = (src, exp % half_m);
            if exp % half_m != 0 && groups.insert(key) {
                counts.materializations += 1;
            }
            State::Dense
        } else {
            st
        }
    };

    let mut per_stage = Vec::with_capacity(log_m as usize);
    for s in 1..=log_m {
        let mults_before = counts.executed_butterflies + counts.materializations;
        let len = 1usize << s;
        let half = len / 2;
        let stride = (m / len) as u32;
        for block in (0..m).step_by(len) {
            for j in 0..half {
                let t = j as u32 * stride; // twiddle exponent, units 2π/m
                let iu = block + j;
                let iv = block + j + half;
                let (u, v) = (state[iu], state[iv]);
                match (u, v) {
                    // Skipping: zero second operand → both outputs copy u.
                    (_, State::Zero) => {
                        counts.skipped_butterflies += 1;
                        state[iv] = u;
                    }
                    // Merging: twiddle folds into the scaled chain.
                    (State::Zero, State::Scaled { src, exp }) => {
                        counts.skipped_butterflies += 1;
                        state[iu] = State::Scaled {
                            src,
                            exp: (exp + t) % m as u32,
                        };
                        state[iv] = State::Scaled {
                            src,
                            exp: (exp + t + half_m) % m as u32,
                        };
                    }
                    // A dense value with a zero partner still needs its
                    // twiddle product (outputs w·v and −w·v).
                    (State::Zero, State::Dense) => {
                        counts.executed_butterflies += 1;
                        state[iu] = State::Dense;
                        state[iv] = State::Dense;
                    }
                    // Both operands live: a real butterfly executes. A
                    // scaled v fuses its chain into the butterfly twiddle
                    // (one multiplication either way); a scaled u must
                    // materialize first.
                    (_, _) => {
                        state[iu] = materialize(u, &mut counts);
                        counts.executed_butterflies += 1;
                        counts.adds += 2;
                        state[iu] = State::Dense;
                        state[iv] = State::Dense;
                    }
                }
            }
        }
        per_stage.push(counts.executed_butterflies + counts.materializations - mults_before);
    }

    // Network outputs: merged chains materialize for the point-wise stage.
    let before_outputs = counts.materializations;
    for st in state {
        let _ = materialize(st, &mut counts);
    }

    (
        counts,
        StageProfile {
            per_stage,
            output_materializations: counts.materializations - before_outputs,
        },
    )
}

/// Multiplications of the fold/twist stage for a live-slot pattern in
/// natural order: one per live slot with non-trivial twist (`ω^0` free).
pub fn twist_mults(pattern_natural: &SparsityPattern) -> u64 {
    pattern_natural
        .indices()
        .iter()
        .filter(|&&j| j != 0)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_pattern_matches_classical_count() {
        for m in [4usize, 16, 64, 256] {
            let c = analyze(&SparsityPattern::dense(m));
            assert_eq!(c.mults(), c.dense_mults(), "m={m}");
            assert_eq!(c.skipped_butterflies, 0);
            assert_eq!(c.adds, c.dense_mults() * 2);
        }
    }

    #[test]
    fn paper_example_4_1_skipping() {
        // 16-point network, 4 contiguous valid values at bit-reversed
        // positions 0..4: only the 4-point sub-network executes (4 mults),
        // an 87.5 % reduction from the classical 32.
        let p = SparsityPattern::from_indices(16, [0, 1, 2, 3]);
        let c = analyze(&p);
        assert_eq!(c.mults(), 4);
        assert_eq!(c.dense_mults(), 32);
        assert!((c.reduction() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn paper_example_4_2_merging() {
        // Single valid value at bit-reversed position 6 of a 16-point
        // network: chains merge into one multiplication per distinct
        // twiddle exponent. The paper counts 4 (charging ω^0); we charge
        // only the 3 non-trivial exponents.
        let p = SparsityPattern::from_indices(16, [6]);
        let c = analyze(&p);
        assert_eq!(c.executed_butterflies, 0);
        assert_eq!(c.materializations, 3);
        assert_eq!(c.mults(), 3);
        assert!(c.reduction() > 0.9);
    }

    #[test]
    fn single_input_costs_at_most_m() {
        // The paper's bound: merging streamlines ½·m·log m to ≤ m mults.
        for m in [16usize, 64, 256, 2048] {
            for src in [0usize, 1, m / 3, m - 1] {
                let c = analyze(&SparsityPattern::from_indices(m, [src]));
                assert!(c.mults() <= m as u64, "m={m} src={src}: {}", c.mults());
                assert_eq!(c.executed_butterflies, 0);
            }
        }
    }

    #[test]
    fn empty_pattern_is_free() {
        let c = analyze(&SparsityPattern::from_indices(64, []));
        assert_eq!(c.mults(), 0);
        assert_eq!(c.adds, 0);
    }

    #[test]
    fn mults_monotone_in_density() {
        // Adding live slots can only increase the cost.
        let m = 128;
        let mut live = Vec::new();
        let mut prev = 0;
        for i in (0..m).step_by(7) {
            live.push(i);
            let c = analyze(&SparsityPattern::from_indices(m, live.iter().copied()));
            assert!(c.mults() >= prev, "density {} regressed", live.len());
            prev = c.mults();
        }
    }

    #[test]
    fn sparse_always_beats_or_ties_dense() {
        let m = 256;
        for seed in 0..20u64 {
            let idx: Vec<usize> = (0..m)
                .filter(|&i| (i as u64).wrapping_mul(seed | 1).wrapping_add(seed) % 7 == 0)
                .collect();
            let c = analyze(&SparsityPattern::from_indices(m, idx));
            assert!(c.mults() <= c.dense_mults());
        }
    }

    #[test]
    fn twist_mult_count() {
        let p = SparsityPattern::from_indices(16, [0, 3, 9]);
        assert_eq!(twist_mults(&p), 2); // slot 0 is free
        assert_eq!(twist_mults(&SparsityPattern::dense(16)), 15);
    }
}
