//! Sparsity-aware FFT dataflow — FLASH's "skipping" and "merging"
//! optimizations (Section IV-B of the paper).
//!
//! Cheetah's coefficient encoding leaves weight plaintexts more than 90 %
//! sparse. This crate exploits that structure in the butterfly network:
//!
//! * **Skipping** — when the second butterfly operand is zero, both
//!   outputs are copies of the first; a contiguous valid prefix therefore
//!   collapses the transform to a small butterfly network followed by
//!   duplication (Figure 8(a)).
//! * **Merging** — an isolated valid value propagates as `± ω^e · x`
//!   through the stages; the chained twiddle multiplications collapse into
//!   a single one whose exponent is the sum of the stage exponents
//!   (Figure 8(b)), and negations/duplications stay free.
//!
//! Both fall out of one mechanism: symbolic execution of the butterfly
//! network over the node lattice `Zero ⊑ Scaled ⊑ Dense`
//! ([`symbolic`]). The same traversal counts multiplications for the
//! cost model ([`symbolic::analyze`]) and computes actual spectra
//! ([`executor::SparseFft`]), which are bit-identical to the dense
//! transform in `f64`.
//!
//! * [`pattern`] — sparsity patterns, folding of negacyclic weight
//!   polynomials into the half-size FFT domain.
//! * [`symbolic`] — the multiplication-counting analysis.
//! * [`executor`] — a functional sparse FFT executor.
//! * [`plan`] — the same dataflow compiled to a flat µop tape, interned
//!   per pattern; the form the protocol hot path executes.
//! * [`schedule`] — mapping counted operations onto butterfly units
//!   (cycle model for the accelerator).
//!
//! # Examples
//!
//! ```
//! use flash_sparse::pattern::SparsityPattern;
//! use flash_sparse::symbolic::analyze;
//!
//! // One isolated non-zero value in a 16-point network: the paper's
//! // Example 4.2. Merging collapses the 32 classical multiplications to
//! // one per distinct twiddle exponent (3 here; the paper charges the
//! // trivial ω⁰ too and says 4).
//! let p = SparsityPattern::from_indices(16, [6]);
//! let counts = analyze(&p.bit_reversed());
//! assert_eq!(counts.mults(), 3);
//! ```

pub mod executor;
pub mod pattern;
pub mod pipeline;
pub mod plan;
pub mod schedule;
pub mod symbolic;

pub use pattern::SparsityPattern;
pub use plan::SparsePlan;
pub use symbolic::{analyze, analyze_cached, DataflowCounts};
