//! Sparsity patterns of butterfly-network inputs.
//!
//! A pattern records which of the `m` complex slots entering the FFT are
//! non-zero. For the negacyclic weight transform the `N` real weight
//! coefficients fold pairwise into `m = N/2` complex slots
//! (`c_j = a_j + i·a_{j+N/2}`), so a slot is live when either partner
//! coefficient is.

use flash_math::bitrev::{bit_reverse, log2_exact};

/// Which slots of an `m`-point butterfly network carry non-zero values.
///
/// Unless stated otherwise a pattern is in *natural* (pre-bit-reverse)
/// order; [`SparsityPattern::bit_reversed`] converts to the order in which
/// values enter the first butterfly stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    mask: Vec<bool>,
}

impl SparsityPattern {
    /// Creates a pattern of size `m` with the given non-zero indices.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a power of two or an index is out of range.
    pub fn from_indices<I: IntoIterator<Item = usize>>(m: usize, indices: I) -> Self {
        assert!(m.is_power_of_two(), "pattern size must be a power of two");
        let mut mask = vec![false; m];
        for i in indices {
            assert!(i < m, "index {i} out of range for pattern of size {m}");
            mask[i] = true;
        }
        Self { mask }
    }

    /// Creates a pattern directly from a boolean mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask length is not a power of two.
    pub fn from_mask(mask: Vec<bool>) -> Self {
        assert!(
            mask.len().is_power_of_two(),
            "pattern size must be a power of two"
        );
        Self { mask }
    }

    /// A fully dense pattern.
    pub fn dense(m: usize) -> Self {
        assert!(m.is_power_of_two());
        Self {
            mask: vec![true; m],
        }
    }

    /// Folds the sparsity of a degree-`n` real polynomial into the
    /// `n/2`-slot complex domain of the negacyclic FFT: slot `j` is live
    /// when coefficient `j` or `j + n/2` is non-zero.
    pub fn fold_from_poly<T: Copy + PartialEq + Default>(coeffs: &[T]) -> Self {
        let n = coeffs.len();
        assert!(
            n.is_power_of_two() && n >= 4,
            "degree must be a power of two >= 4"
        );
        let half = n / 2;
        let zero = T::default();
        let mask = (0..half)
            .map(|j| coeffs[j] != zero || coeffs[j + half] != zero)
            .collect();
        Self { mask }
    }

    /// Pattern size `m`.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// Whether no slot is live.
    pub fn is_empty(&self) -> bool {
        !self.mask.iter().any(|&b| b)
    }

    /// Number of live slots.
    pub fn count(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Fraction of *zero* slots (the paper's sparsity metric).
    pub fn sparsity(&self) -> f64 {
        1.0 - self.count() as f64 / self.len() as f64
    }

    /// Whether slot `i` is live.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.mask[i]
    }

    /// The underlying mask.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// The same pattern permuted into bit-reversed order (the order in
    /// which the first butterfly stage consumes slots).
    pub fn bit_reversed(&self) -> SparsityPattern {
        let m = self.mask.len();
        let bits = log2_exact(m);
        let mask = (0..m).map(|i| self.mask[bit_reverse(i, bits)]).collect();
        SparsityPattern { mask }
    }

    /// Live indices in ascending order.
    pub fn indices(&self) -> Vec<usize> {
        self.mask
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// Canonical digest of the pattern: the mask packed into 64-bit words
    /// plus the exact length. Two patterns share a digest iff their masks
    /// are identical, which makes this the cache key of both the symbolic
    /// analysis memo and the compiled-plan interner.
    pub fn packed_words(&self) -> (usize, Vec<u64>) {
        let mut words = vec![0u64; self.mask.len().div_ceil(64)];
        for (i, &live) in self.mask.iter().enumerate() {
            if live {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        (self.mask.len(), words)
    }
}

/// Builds the Cheetah-style weight pattern used throughout the paper's
/// figures: for every span of `hw` coefficients (one input channel's
/// `H×W` block), `k`-long runs of valid values every `w_stride`
/// coefficients, `k` rows deep — i.e. the image of a `k×k` kernel under
/// coefficient encoding (Figure 7).
pub fn cheetah_weight_pattern(n: usize, hw: usize, w_stride: usize, k: usize) -> SparsityPattern {
    assert!(n.is_power_of_two());
    let mut mask = vec![false; n];
    let mut base = 0;
    while base + hw <= n {
        for row in 0..k {
            for col in 0..k {
                let idx = base + row * w_stride + col;
                if idx < n {
                    mask[idx] = true;
                }
            }
        }
        base += hw;
    }
    SparsityPattern { mask }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_stats() {
        let p = SparsityPattern::from_indices(16, [0, 3, 15]);
        assert_eq!(p.len(), 16);
        assert_eq!(p.count(), 3);
        assert!((p.sparsity() - 13.0 / 16.0).abs() < 1e-12);
        assert_eq!(p.indices(), vec![0, 3, 15]);
        assert!(!p.is_empty());
        assert!(SparsityPattern::from_indices(8, []).is_empty());
    }

    #[test]
    fn dense_pattern() {
        let p = SparsityPattern::dense(8);
        assert_eq!(p.count(), 8);
        assert_eq!(p.sparsity(), 0.0);
    }

    #[test]
    fn fold_unions_partner_coefficients() {
        // n = 8: coefficients 1 and 5 share slot 1; coefficient 7 lives in
        // slot 3.
        let mut c = vec![0i64; 8];
        c[1] = 3;
        c[5] = -2;
        c[7] = 1;
        let p = SparsityPattern::fold_from_poly(&c);
        assert_eq!(p.len(), 4);
        assert_eq!(p.indices(), vec![1, 3]);
    }

    #[test]
    fn bit_reverse_moves_slots() {
        let p = SparsityPattern::from_indices(8, [1]);
        let br = p.bit_reversed();
        // natural index 1 lands at bit-reversed position 4.
        assert_eq!(br.indices(), vec![4]);
        // double reversal is identity
        assert_eq!(br.bit_reversed(), p);
    }

    #[test]
    fn cheetah_pattern_shape() {
        // hw = 16 per channel, row stride 4, 2x2 kernel, n = 64: 4 channels
        // x 4 valid each.
        let p = cheetah_weight_pattern(64, 16, 4, 2);
        assert_eq!(p.count(), 16);
        assert_eq!(&p.indices()[..4], &[0, 1, 4, 5]);
        assert!(p.get(16) && p.get(17) && p.get(20) && p.get(21));
        assert!(p.sparsity() > 0.7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        SparsityPattern::from_indices(8, [8]);
    }
}
