//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the minimal API needed to compile and run the workspace's benches:
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! short warm-up plus a fixed number of timed iterations and prints the
//! median per-iteration time. Good enough for trend-watching; the
//! machine-readable perf trajectory lives in `flash-bench`'s
//! `bench_perf` binary, not here.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for parameterised benches, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing harness handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    fn new(sample_count: u32) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and calibrate iterations so one sample is >= ~1ms.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        self.iters_per_sample = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)) as u32 + 1
        } else {
            1
        };
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t.elapsed() / self.iters_per_sample.max(1));
        }
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort();
        s[s.len() / 2]
    }
}

/// Named group of benches, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: u32,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = (n as u32).max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        println!(
            "bench {}/{}: median {:?} ({} samples)",
            self.name,
            id.into_bench_id(),
            b.median(),
            b.samples.len()
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b, input);
        println!(
            "bench {}/{}: median {:?} ({} samples)",
            self.name,
            id.id,
            b.median(),
            b.samples.len()
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Bench identifiers: plain strings or `BenchmarkId`s.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Top-level harness, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 10,
            _marker: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(10);
        f(&mut b);
        println!(
            "bench {}: median {:?} ({} samples)",
            id.into_bench_id(),
            b.median(),
            b.samples.len()
        );
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
