//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: `RngCore`, the `Rng`
//! extension trait (`gen_range` over integer/float ranges, `gen_bool`),
//! `SeedableRng`, and a deterministic `rngs::StdRng`.
//!
//! The streams produced here are NOT the upstream `rand` streams (StdRng
//! upstream is ChaCha12; here it is xoshiro256**). Everything in this
//! workspace treats seeded RNG output as "arbitrary but reproducible",
//! never as a golden value, so only determinism matters: the same seed
//! always yields the same stream across runs, threads, and platforms.

use std::fmt;

/// Opaque error type mirroring `rand::Error`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand stub error")
    }
}

impl std::error::Error for Error {}

/// Core RNG interface: raw integer output and byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as $wide;
                let hi_w = hi as $wide;
                let span = if inclusive {
                    (hi_w.wrapping_sub(lo_w) as u128).wrapping_add(1)
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    hi_w.wrapping_sub(lo_w) as u128
                };
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return rng.next_u64() as $wide as $t;
                }
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                lo_w.wrapping_add(r as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for u128 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        if !inclusive {
            assert!(lo < hi, "gen_range: empty range");
        }
        let span = if inclusive { hi - lo + 1 } else { hi - lo };
        if span == 0 {
            return (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        }
        let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
        lo + r
    }
}

impl SampleUniform for i128 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
        let span = u128::sample_range(
            rng,
            0,
            if inclusive {
                hi.wrapping_sub(lo) as u128
            } else {
                assert!(lo < hi, "gen_range: empty range");
                (hi.wrapping_sub(lo) as u128).wrapping_sub(1)
            },
            true,
        );
        lo.wrapping_add(span as i128)
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let _ = inclusive;
                assert!(lo < hi || (inclusive && lo <= hi), "gen_range: empty range");
                // 53-bit (or 24-bit) uniform fraction in [0, 1).
                let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + frac * (hi as f64 - lo as f64);
                let v = v as $t;
                if v >= hi && !inclusive { lo } else { v }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let frac = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        frac < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNGs, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 key expansion (same scheme upstream uses).
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which is a fixed point of xoshiro.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
            let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
            assert_eq!(va, vb);
            let mut c = StdRng::seed_from_u64(43);
            assert_ne!(va[0], c.next_u64());
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut r = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x: i64 = r.gen_range(-8..8);
                assert!((-8..8).contains(&x));
                let y: u32 = r.gen_range(4u32..64);
                assert!((4..64).contains(&y));
                let z: i32 = r.gen_range(-2..=2);
                assert!((-2..=2).contains(&z));
                let f: f64 = r.gen_range(f64::EPSILON..1.0);
                assert!((f64::EPSILON..1.0).contains(&f));
                let u: usize = r.gen_range(0..3usize);
                assert!(u < 3);
            }
        }
    }
}
