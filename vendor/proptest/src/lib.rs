//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), range and `any::<T>()` strategies,
//! `prop_map`, `prop::collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: each test runs `cases` deterministic pseudo-random
//! inputs (seeded from the test name, so runs are reproducible) and
//! panics on the first failing case.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: seeded from the test name via FNV-1a.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Value-generation strategy, mirroring `proptest::strategy::Strategy`
/// (without shrinking: `generate` replaces `new_tree`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`]. Rejection-samples up to a bound.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: rejected 1000 candidates in a row");
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

/// Whole-domain strategy for a primitive, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut StdRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, spread over a wide magnitude range.
        let mag = rng.gen_range(-300i32..300) as f64;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.gen_range(0.0f64..1.0) * 10f64.powf(mag / 10.0)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: uniform over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// `Just(v)`: strategy that always yields `v`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Size argument for [`vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `R`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// `proptest::prelude::prop` namespace.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{any, collection, prop, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Marker for a case discarded by `prop_assume!`.
#[derive(Debug)]
pub struct Rejected;

/// Discard the current case (the runner draws a replacement input).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::Rejected);
        }
    };
}

/// The main property-test macro. Supports:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(a in 0u64..10, b in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.cases;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts <= cases.saturating_mul(100),
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    // The closure returns `Err(Rejected)` when `prop_assume!`
                    // discards the input (bodies may also `return Ok(())` to
                    // accept early); assertion failures panic directly.
                    let outcome = (move || -> ::std::result::Result<(), $crate::Rejected> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}
