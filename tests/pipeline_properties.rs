//! Property-based tests spanning the full pipeline.

use flash_accel::config::FlashConfig;
use flash_accel::hconv::FlashHconv;
use flash_he::encoding::{direct_conv_stride1, ConvEncoder, ConvShape, TileAlignment};
use flash_he::{Poly, SecretKey};
use flash_math::C64;
use flash_nn::layers::{conv_reference, ConvLayerSpec};
use flash_sparse::executor::SparseFft;
use flash_sparse::pattern::SparsityPattern;
use flash_sparse::symbolic::analyze;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any small stride-1 convolution survives the full encode/protocol/
    /// decode pipeline on the approximate backend.
    #[test]
    fn protocol_correct_for_random_small_convs(
        c in 1usize..3,
        h in 4usize..7,
        m in 1usize..3,
        k in 1usize..3,
        seed in 0u64..50,
    ) {
        let cfg = FlashConfig::test_small();
        let layer = ConvLayerSpec {
            name: "prop".into(), c, h, w: h, m, k, stride: 1, pad: 0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&cfg.he, &mut rng);
        let x: Vec<i64> = (0..layer.c * layer.h * layer.w)
            .map(|i| ((i as i64 * 37 + seed as i64) % 15) - 7)
            .collect();
        let w: Vec<i64> = (0..layer.weight_count())
            .map(|i| ((i as i64 * 11 + seed as i64) % 15) - 7)
            .collect();
        let engine = FlashHconv::new(cfg);
        let (y, _) = engine.run_layer(&sk, &layer, &x, &w, &mut rng).unwrap();
        let ring = engine.ring();
        let want: Vec<i64> = conv_reference(&x, &w, &layer)
            .iter()
            .map(|&v| ring.to_signed(ring.reduce(v)))
            .collect();
        prop_assert_eq!(y, want);
    }

    /// Both tile layouts produce the same convolution results.
    #[test]
    fn layouts_agree(seed in 0u64..100) {
        let shape = ConvShape { c: 2, h: 5, w: 6, m: 2, k: 3 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let x: Vec<i64> = (0..shape.input_len()).map(|_| rng.gen_range(-8..8)).collect();
        let f: Vec<i64> = (0..shape.m * shape.kernel_len()).map(|_| rng.gen_range(-8..8)).collect();
        let fft = flash_fft::NegacyclicFft::new(128);
        let run = |align: TileAlignment| -> Vec<i64> {
            let enc = ConvEncoder::with_alignment(shape, 128, align);
            let acts = enc.encode_activation(&x);
            let mut y = vec![0i64; shape.output_len()];
            for oc in 0..shape.m {
                let wp = enc.encode_weight(&f[oc * shape.kernel_len()..][..shape.kernel_len()], oc);
                for b in 0..enc.bands() {
                    let mut acc = vec![0i64; 128];
                    for g in 0..enc.groups() {
                        let prod = fft.polymul_i64(&acts[g * enc.bands() + b], &wp[g][b]);
                        for (a, p) in acc.iter_mut().zip(&prod) {
                            *a += *p as i64;
                        }
                    }
                    enc.decode_band(&acc, b, oc, &mut y);
                }
            }
            y
        };
        let compact = run(TileAlignment::Compact);
        let aligned = run(TileAlignment::PowerOfTwo);
        let want = direct_conv_stride1(&x, &f, &shape);
        prop_assert_eq!(&compact, &want);
        prop_assert_eq!(&aligned, &want);
    }

    /// The sparse executor equals the dense FFT for arbitrary patterns,
    /// and the counted sparse cost never exceeds the dense cost.
    #[test]
    fn sparse_dataflow_exact_and_never_worse(
        log_m in 3u32..9,
        density_pct in 1usize..100,
        seed in 0u64..1000,
    ) {
        let m = 1usize << log_m;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut input = vec![C64::ZERO; m];
        for slot in input.iter_mut() {
            if rng.gen_range(0..100) < density_pct {
                *slot = C64::new(rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0));
            }
        }
        let pattern = SparsityPattern::from_mask(input.iter().map(|v| *v != C64::ZERO).collect());
        let counts = analyze(&pattern.bit_reversed());
        prop_assert!(counts.mults() <= counts.dense_mults());

        let sp = SparseFft::new(m);
        let got = sp.transform(&input);
        let plan = flash_fft::fft64::FftPlan::new(m);
        let mut want = input.clone();
        plan.transform(&mut want, flash_fft::dft::Direction::Positive);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    /// Encrypt/evaluate/decrypt is correct for arbitrary plaintext
    /// algebra with small weights.
    #[test]
    fn he_algebra_random(seed in 0u64..100, w1 in -8i64..8, idx in 0usize..256) {
        let p = flash_he::HeParams::test_256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sk = SecretKey::generate(&p, &mut rng);
        let m = Poly::uniform(p.n, p.t, &mut rng);
        let add = Poly::uniform(p.n, p.t, &mut rng);
        let mut w = vec![0i64; p.n];
        w[idx] = w1;
        let ct = sk
            .encrypt(&m, &mut rng)
            .add_plain(&add, &p)
            .mul_plain_signed(&w, &p, &flash_he::PolyMulBackend::FftF64);
        let w_t: Vec<u64> = w.iter().map(|&x| flash_math::modular::from_signed(x, p.t)).collect();
        let want = Poly::from_coeffs(
            flash_ntt::polymul::negacyclic_mul_naive(m.add(&add).coeffs(), &w_t, p.t),
            p.t,
        );
        prop_assert_eq!(sk.decrypt(&ct), want);
    }
}
