//! Cross-model validation: the counting analysis, the functional
//! executors and the analytical error models must all tell one story.

use flash_accel::workload::layer_workload;
use flash_fft::error::{analytical_product_error_variance, monte_carlo_error, ErrorWorkload};
use flash_fft::fixed_fft::FixedNegacyclicFft;
use flash_fft::ApproxFftConfig;
use flash_he::encoding::{ConvEncoder, ConvShape, TileAlignment};
use flash_math::fixed::FxpFormat;
use flash_math::C64;
use flash_nn::layers::ConvLayerSpec;
use flash_sparse::executor::SparseFft;
use flash_sparse::pattern::SparsityPattern;
use flash_sparse::symbolic::analyze;
use rand::{Rng, SeedableRng};

/// The symbolic multiplication counter and the value-carrying executor
/// traverse identical dataflows: wherever the counter claims a butterfly
/// was skipped, the executor's output still matches the dense transform.
#[test]
fn counting_and_execution_agree_on_real_patterns() {
    let n = 4096;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for (c, h, k) in [(1usize, 58usize, 3usize), (4, 30, 3), (16, 16, 1)] {
        let shape = ConvShape {
            c,
            h,
            w: h,
            m: 1,
            k,
        };
        let enc = ConvEncoder::with_alignment(shape, n, TileAlignment::PowerOfTwo);
        let idx = enc.weight_indices(0);
        // fold to the FFT half-domain
        let half = n / 2;
        let mut input = vec![C64::ZERO; half];
        for &i in &idx {
            input[i % half] += C64::new(rng.gen_range(-8.0..8.0), 0.0);
        }
        let pattern = SparsityPattern::from_mask(input.iter().map(|v| *v != C64::ZERO).collect());
        let counts = analyze(&pattern.bit_reversed());
        assert!(counts.mults() < counts.dense_mults() / 4, "({c},{h},{k})");

        let sp = SparseFft::new(half);
        let got = sp.transform(&input);
        let plan = flash_fft::fft64::FftPlan::new(half);
        let mut want = input.clone();
        plan.transform(&mut want, flash_fft::dft::Direction::Positive);
        let err = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-6, "({c},{h},{k}): executor error {err}");
    }
}

/// Workload extraction is consistent with the encoder it is built on.
#[test]
fn workload_counts_match_encoder_plan() {
    let n = 4096;
    for (c, h, m, k) in [(64usize, 56usize, 64usize, 3usize), (256, 14, 512, 1)] {
        let spec = ConvLayerSpec {
            name: "x".into(),
            c,
            h,
            w: h,
            m,
            k,
            stride: 1,
            pad: if k == 3 { 1 } else { 0 },
        };
        let w = layer_workload(&spec, n);
        let enc = ConvEncoder::with_alignment(spec.encoded_shape(), n, TileAlignment::PowerOfTwo);
        assert_eq!(
            w.weight_transforms,
            (enc.groups() * m) as u64,
            "({c},{h},{m},{k})"
        );
        assert_eq!(w.act_transforms, (2 * enc.groups() * enc.bands()) as u64);
        assert_eq!(w.pointwise, (enc.groups() * enc.bands() * m * n) as u64);
    }
}

/// The analytical error model brackets bit-accurate Monte Carlo across
/// operating points.
#[test]
fn analytical_error_model_tracks_monte_carlo() {
    let n = 512;
    let wl = ErrorWorkload {
        weight_mag: 8,
        weight_nnz: 9,
        act_mag: 4096.0,
    };
    for (frac, k) in [(10u32, 8usize), (16, 12), (22, 18)] {
        let cfg = ApproxFftConfig::uniform(n, FxpFormat::new(16, frac), k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(frac as u64);
        let mc = monte_carlo_error(&cfg, wl, 3, &mut rng);
        let w_var = 9.0 / n as f64 * (8.0 * 9.0 / 3.0);
        let a_var = 4096.0f64 * 4096.0 / 3.0;
        let ana = analytical_product_error_variance(&cfg, w_var, a_var);
        let ratio = ana / mc.variance.max(1e-30);
        assert!(
            (1e-2..1e2).contains(&ratio),
            "frac={frac} k={k}: analytical {ana:.3e} vs MC {:.3e}",
            mc.variance
        );
    }
}

/// The fixed-point transform degrades gracefully and monotonically along
/// the DSE axes (coarser data width and twiddle level never help).
#[test]
fn error_monotone_along_dse_axes() {
    let n = 256;
    let a: Vec<i64> = (0..n as i64).map(|i| (i % 15) - 7).collect();
    let rms = |cfg: ApproxFftConfig| {
        let f = FixedNegacyclicFft::new(cfg);
        f.spectrum_error(&a)
            .iter()
            .map(|e| e.abs2())
            .sum::<f64>()
            .sqrt()
    };
    // fraction-bit axis at fixed k
    let coarse = rms(ApproxFftConfig::uniform(n, FxpFormat::new(16, 6), 16));
    let fine = rms(ApproxFftConfig::uniform(n, FxpFormat::new(16, 20), 16));
    assert!(coarse > fine * 5.0, "frac axis: {coarse} vs {fine}");
    // twiddle axis at fixed width
    let coarse_k = rms(ApproxFftConfig::uniform(n, FxpFormat::new(16, 22), 3));
    let fine_k = rms(ApproxFftConfig::uniform(n, FxpFormat::new(16, 22), 16));
    assert!(coarse_k > fine_k * 5.0, "k axis: {coarse_k} vs {fine_k}");
}

/// The analytic schedule and the event-driven simulator agree at network
/// scale: summed simulated makespans bracket the analytic per-layer sums
/// within the pipelining slack.
#[test]
fn network_sim_brackets_analytic_schedule() {
    use flash_accel::schedule::schedule_layer;
    use flash_accel::sim::simulate_layer;
    use flash_hw::arch::FlashArch;
    use flash_sparse::schedule::PeModel;
    let arch = FlashArch::paper_default();
    let pe = PeModel::default();
    let net = flash_nn::resnet18_conv_layers();
    let mut analytic_total = 0u64;
    let mut sim_total = 0u64;
    for spec in &net.convs {
        let w = layer_workload(spec, 4096);
        analytic_total += schedule_layer(&w, &arch, &pe).cycles;
        sim_total += simulate_layer(&w, &arch, &pe).finish;
    }
    let ratio = sim_total as f64 / analytic_total as f64;
    assert!(
        (0.8..2.5).contains(&ratio),
        "sim {sim_total} vs analytic {analytic_total} (ratio {ratio})"
    );
}

/// The schedule model is self-consistent: dense always costs at least as
/// much as sparse, and cycles scale with transform counts.
#[test]
fn schedule_model_self_consistent() {
    use flash_accel::schedule::schedule_layer;
    use flash_hw::arch::FlashArch;
    use flash_sparse::schedule::PeModel;
    let arch = FlashArch::paper_default();
    let pe = PeModel::default();
    let spec = ConvLayerSpec {
        name: "s".into(),
        c: 64,
        h: 28,
        w: 28,
        m: 64,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let w = layer_workload(&spec, 4096);
    let perf = schedule_layer(&w, &arch, &pe);
    let mut dense = w.clone();
    dense.weight_mults_sparse_each = dense.weight_mults_dense_each;
    let perf_dense = schedule_layer(&dense, &arch, &pe);
    assert!(perf_dense.weight_cycles > 4 * perf.weight_cycles);
    assert!(perf_dense.cycles >= perf.cycles);

    let mut doubled = w.clone();
    doubled.accumulate(&w);
    let perf2 = schedule_layer(&doubled, &arch, &pe);
    assert!(perf2.weight_cycles >= 2 * perf.weight_cycles - 1000);
}
