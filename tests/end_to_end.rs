//! Workspace-level integration tests: the full private-inference pipeline
//! across every crate.

use flash_accel::config::FlashConfig;
use flash_accel::hconv::FlashHconv;
use flash_he::{Poly, PolyMulBackend, SecretKey};
use flash_nn::layers::{conv_reference, ConvLayerSpec};
use flash_nn::quant::{Quantizer, Requantizer};
use rand::SeedableRng;

fn spec(c: usize, h: usize, m: usize, k: usize, stride: usize, pad: usize) -> ConvLayerSpec {
    ConvLayerSpec {
        name: format!("it.{c}x{h}k{k}s{stride}"),
        c,
        h,
        w: h,
        m,
        k,
        stride,
        pad,
    }
}

/// All three backends agree bit-for-bit on a full protocol run.
#[test]
fn backends_agree_on_protocol_outputs() {
    let cfg = FlashConfig::test_small();
    let layer = spec(2, 6, 2, 3, 1, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sk = SecretKey::generate(&cfg.he, &mut rng);
    let x = layer.sample_input(Quantizer::a4(), &mut rng);
    let w = layer.sample_weights(Quantizer::w4(), &mut rng);

    let mut outs = Vec::new();
    for backend in [
        PolyMulBackend::Ntt,
        PolyMulBackend::FftF64,
        PolyMulBackend::approx(cfg.numerics.clone()),
    ] {
        let engine = FlashHconv::with_backend(cfg.clone(), backend);
        let mut r = rand::rngs::StdRng::seed_from_u64(99);
        let (y, _) = engine.run_layer(&sk, &layer, &x, &w, &mut r).unwrap();
        outs.push(y);
    }
    assert_eq!(outs[0], outs[1], "NTT vs f64 FFT");
    assert_eq!(outs[0], outs[2], "NTT vs approximate FXP FFT");
}

/// A two-layer private pipeline with re-quantization matches cleartext.
#[test]
fn two_layer_pipeline_with_requant() {
    let cfg = FlashConfig::test_small();
    let engine = FlashHconv::new(cfg.clone());
    let ring = engine.ring();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let sk = SecretKey::generate(&cfg.he, &mut rng);

    let l1 = spec(2, 8, 2, 3, 2, 1); // stride-2
    let l2 = spec(2, 4, 3, 1, 1, 0); // 1x1
    let x0 = l1.sample_input(Quantizer::a4(), &mut rng);
    let w1 = l1.sample_weights(Quantizer::w4(), &mut rng);
    let w2 = l2.sample_weights(Quantizer::w4(), &mut rng);

    // private path
    let (y1p, _) = engine.run_layer(&sk, &l1, &x0, &w1, &mut rng).unwrap();
    let rq = Requantizer::calibrate(y1p.iter().map(|v| v.abs()).max().unwrap().max(1), 4);
    let x1p: Vec<i64> = y1p.iter().map(|&v| rq.apply(v)).collect();
    let (y2p, _) = engine.run_layer(&sk, &l2, &x1p, &w2, &mut rng).unwrap();

    // cleartext path
    let y1c = conv_reference(&x0, &w1, &l1);
    let x1c: Vec<i64> = y1c.iter().map(|&v| rq.apply(v)).collect();
    let y2c: Vec<i64> = conv_reference(&x1c, &w2, &l2)
        .iter()
        .map(|&v| ring.to_signed(ring.reduce(v)))
        .collect();

    assert_eq!(x1p, x1c, "first layer (after requant)");
    assert_eq!(y2p, y2c, "second layer");
}

/// Homomorphic operations keep the noise within budget throughout a
/// realistic evaluation chain.
#[test]
fn noise_budget_survives_evaluation_chain() {
    let p = flash_he::HeParams::test_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let sk = SecretKey::generate(&p, &mut rng);

    let m = Poly::uniform(p.n, p.t, &mut rng);
    let ct = sk.encrypt(&m, &mut rng);
    let fresh_budget = sk.noise_budget_bits(&ct, &m);
    assert!(fresh_budget > 10.0, "fresh budget {fresh_budget}");

    // share-add, weight-multiply, accumulate, mask-subtract — one HConv's
    // worth of homomorphic work.
    let share = Poly::uniform(p.n, p.t, &mut rng);
    let ct = ct.add_plain(&share, &p);
    let mut w = vec![0i64; p.n];
    for i in 0..9 {
        w[i * 11] = if i % 2 == 0 { 7 } else { -8 };
    }
    let ct = ct.mul_plain_signed(&w, &p, &PolyMulBackend::Ntt);
    let ct = ct.add_ct(&ct);
    let mask = Poly::uniform(p.n, p.t, &mut rng);
    let ct = ct.sub_plain(&mask, &p);

    // message after the same plaintext algebra
    let w_t: Vec<u64> = w
        .iter()
        .map(|&x| flash_math::modular::from_signed(x, p.t))
        .collect();
    let mw = Poly::from_coeffs(
        flash_ntt::polymul::negacyclic_mul_naive(m.add(&share).coeffs(), &w_t, p.t),
        p.t,
    );
    let expected = mw.add(&mw).sub(&mask);
    assert_eq!(sk.decrypt(&ct), expected);
    let budget = sk.noise_budget_bits(&ct, &expected);
    assert!(budget > 0.0, "post-evaluation budget {budget}");
    assert!(budget < fresh_budget, "multiplication must consume budget");
}

/// The paper-default configuration runs the full performance model and
/// lands in the reported regimes.
#[test]
fn paper_regime_end_to_end() {
    let cfg = FlashConfig::paper_default();
    let r18 = flash_accel::inference::run_network(&flash_nn::resnet18_conv_layers(), &cfg);
    let r50 = flash_accel::inference::run_network(&flash_nn::resnet50_conv_layers(), &cfg);
    // Table IV shape: milliseconds latency, tens-x speedups, ResNet-50
    // slower but with a larger speedup.
    assert!(r18.transform_latency_s < r50.transform_latency_s);
    assert!(r18.speedup_vs_cham() > 10.0 && r18.speedup_vs_cham() < 60.0);
    assert!(r50.speedup_vs_cham() > 20.0 && r50.speedup_vs_cham() < 120.0);
    assert!(r50.speedup_vs_cham() > r18.speedup_vs_cham());
    // energy reduction vs F1 in the reported direction
    assert!(r18.energy_reduction_vs_f1() > 0.5);
    assert!(r50.energy_reduction_vs_f1() > 0.5);
}

/// Communication accounting is symmetric with the tiling plan for a
/// strided layer (4 phases).
#[test]
fn stride2_communication_accounting() {
    let cfg = FlashConfig::test_small();
    let layer = spec(2, 8, 2, 3, 2, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let sk = SecretKey::generate(&cfg.he, &mut rng);
    let x = layer.sample_input(Quantizer::a4(), &mut rng);
    let w = layer.sample_weights(Quantizer::w4(), &mut rng);
    let engine = FlashHconv::new(cfg.clone());
    let (_, stats) = engine.run_layer(&sk, &layer, &x, &w, &mut rng).unwrap();
    // 4 phases, each uploading at least one ciphertext per channel group
    assert!(stats.ciphertexts_up >= 4);
    assert_eq!(stats.ciphertexts_up % 4, 0);
    assert!(stats.upload_bytes > 0 && stats.download_bytes > 0);
    assert_eq!(stats.activation_transforms, 2 * stats.ciphertexts_up);
}
