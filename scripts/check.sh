#!/usr/bin/env bash
# Repository health gate: lint, format, tier-1 tests, hot-path bench.
#
# Everything runs offline against vendored dependencies; this is the
# same sequence CI executes, so a clean local run means a clean CI run.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1)"
cargo test --workspace -q

# The telemetry feature is default-off; build and test the instrumented
# configuration too so span plumbing cannot rot unnoticed. The feature
# only exists in the pipeline crates (vendor stubs don't carry it), so
# enable it per package rather than workspace-wide.
echo "==> cargo build/test with --features telemetry"
cargo build --release -p flash-bench --features telemetry
cargo test -q -p flash-telemetry -p flash-he -p flash-2pc -p flash-accel \
    --features flash-telemetry/telemetry

# Regression gate runs before the smoke bench: the smoke bench rewrites
# the BENCH_*.json artifacts, and the gate must compare against the
# *committed* baselines, not ones freshly produced by this run.
echo "==> bench_perf --check-regression (vs committed BENCH_*.json)"
cargo run --release -p flash-bench --bin bench_perf -- --check-regression

echo "==> bench_perf --quick (hot-path + sparse smoke, telemetry on)"
cargo run --release -p flash-bench --features telemetry --bin bench_perf -- --quick

echo "==> all checks passed"
