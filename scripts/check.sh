#!/usr/bin/env bash
# Repository health gate: lint, format, tier-1 tests, hot-path bench.
#
# Everything runs offline against vendored dependencies; this is the
# same sequence CI executes, so a clean local run means a clean CI run.

set -euo pipefail
cd "$(dirname "$0")/.."

# `--faults` runs only the deterministic fault-injection suite: the
# seeded 1000-schedule protocol sweep, the exhaustive single-bit-flip
# sweeps, the framing proptests (fixed PROPTEST seeds via the vendored
# stub), and the transport unit tests. Every schedule is a pure function
# of its seed, so this job is bit-reproducible across machines.
if [[ "${1:-}" == "--faults" ]]; then
    echo "==> fault-injection suite (deterministic seeds)"
    cargo test -q -p flash-2pc --lib transport
    cargo test -q -p flash-2pc --test transport_proptests --test fault_injection
    cargo test -q -p flash-2pc --lib protocol::tests::conv_recovers_bit_identically_from_scripted_faults
    cargo test -q -p flash-2pc --lib matvec::tests::fc_recovers_from_faulty_wire
    echo "==> fault-injection suite passed"
    exit 0
fi

# `--serve` runs only the serving-layer suite: the flash-serve unit and
# integration tests (session lifecycle, batching determinism across
# worker counts, chaos isolation) plus one quick 64-client wave of the
# serving benchmark as an end-to-end smoke. The wave asserts batch
# occupancy and spot-checks a reconstruction against the cleartext
# convolution; the speedup is reported but only gated in the full
# `bench_serve` run.
if [[ "${1:-}" == "--serve" ]]; then
    echo "==> serving-layer suite"
    cargo test -q -p flash-serve
    cargo run -q --release -p flash-bench --bin bench_serve -- --quick --chaos
    echo "==> serving-layer suite passed"
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1, portable baseline)"
cargo test --workspace -q

# The spectral kernels runtime-dispatch on detected target features
# (scalar / portable / AVX2 / AVX-512); `FLASH_SIMD=off` clamps every
# dispatcher to the per-polynomial scalar path so that fallback can
# never silently rot on hosts where the wide tiers always win.
echo "==> spectral-kernel tests with FLASH_SIMD=off (scalar fallback)"
FLASH_SIMD=off cargo test -q -p flash-runtime -p flash-fft -p flash-ntt \
    -p flash-sparse -p flash-he -p flash-accel

# Second build+test of the whole workspace with the host's full ISA
# baked in at compile time (separate target dir so the two builds never
# evict each other). The portable pass above proves the code is correct
# without any `-C target-cpu` help; this pass proves it stays correct —
# and bit-identical — when the compiler is free to use every feature
# the dispatcher would pick at runtime.
echo "==> cargo test (tier-1, -C target-cpu=native)"
RUSTFLAGS="-C target-cpu=native" CARGO_TARGET_DIR=target/native \
    cargo test --workspace -q

# The telemetry feature is default-off; build and test the instrumented
# configuration too so span plumbing cannot rot unnoticed. The feature
# only exists in the pipeline crates (vendor stubs don't carry it), so
# enable it per package rather than workspace-wide.
echo "==> cargo build/test with --features telemetry"
cargo build --release -p flash-bench --features telemetry
cargo test -q -p flash-telemetry -p flash-he -p flash-2pc -p flash-accel \
    --features flash-telemetry/telemetry

# Regression gate runs before the smoke bench: the smoke bench rewrites
# the BENCH_*.json artifacts, and the gate must compare against the
# *committed* baselines, not ones freshly produced by this run.
echo "==> bench_perf --check-regression (vs committed BENCH_*.json)"
cargo run --release -p flash-bench --bin bench_perf -- --check-regression

echo "==> bench_perf --quick (hot-path + sparse smoke, telemetry on)"
cargo run --release -p flash-bench --features telemetry --bin bench_perf -- --quick

echo "==> bench_serve --quick (64-client serving smoke)"
cargo run -q --release -p flash-bench --bin bench_serve -- --quick

echo "==> all checks passed"
