//! Quickstart: one private convolution through FLASH's approximate-FFT
//! homomorphic pipeline.
//!
//! ```text
//! cargo run --release -p flash-accel --example quickstart
//! ```
//!
//! The client secret-shares a small activation tensor, encrypts its
//! share, and the server convolves it with quantized weights using the
//! hybrid HE/2PC protocol — with the polynomial products running on
//! FLASH's fixed-point approximate FFT. The reconstructed result is
//! checked against a cleartext convolution.

use flash_accel::config::FlashConfig;
use flash_accel::hconv::FlashHconv;
use flash_he::SecretKey;
use flash_nn::layers::{conv_reference, ConvLayerSpec};
use flash_nn::quant::Quantizer;
use rand::SeedableRng;

fn main() {
    // A functional-test-scale configuration (N = 256; the paper's point
    // is N = 4096 — see FlashConfig::paper_default()).
    let cfg = FlashConfig::test_small();
    println!(
        "BFV: N = {}, q = {} ({} bits), t = 2^{}",
        cfg.he.n,
        cfg.he.q,
        64 - cfg.he.q.leading_zeros(),
        cfg.he.t.trailing_zeros()
    );

    // A small quantized conv layer: 2 channels of 6x6, 3x3 kernel, pad 1.
    let layer = ConvLayerSpec {
        name: "demo.conv".into(),
        c: 2,
        h: 6,
        w: 6,
        m: 2,
        k: 3,
        stride: 1,
        pad: 1,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let x = layer.sample_input(Quantizer::a4(), &mut rng);
    let w = layer.sample_weights(Quantizer::w4(), &mut rng);

    // Client-side key; the engine drives both protocol roles in-process.
    let sk = SecretKey::generate(&cfg.he, &mut rng);
    let engine = FlashHconv::new(cfg);
    let (y, stats) = engine
        .run_layer(&sk, &layer, &x, &w, &mut rng)
        .expect("protocol run failed");

    // Verify against the cleartext convolution (mod the share ring).
    let ring = engine.ring();
    let expected: Vec<i64> = conv_reference(&x, &w, &layer)
        .iter()
        .map(|&v| ring.to_signed(ring.reduce(v)))
        .collect();
    assert_eq!(y, expected, "private result must equal cleartext conv");

    println!(
        "private conv OK: {} outputs, {} ciphertexts up ({} B), {} down ({} B)",
        y.len(),
        stats.ciphertexts_up,
        stats.upload_bytes,
        stats.ciphertexts_down,
        stats.download_bytes
    );
    println!(
        "server work: {} weight transforms, {} activation transforms, {} point-wise muls",
        stats.weight_transforms, stats.activation_transforms, stats.pointwise_muls
    );
    println!("first output row: {:?}", &y[..layer.out_w()]);
}
