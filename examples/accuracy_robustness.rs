//! The error-resilience story, end to end: sweep the approximate-FFT
//! knobs (data width `dw`, twiddle level `k`) and watch errors being
//! absorbed at the kernel, layer and network levels.
//!
//! ```text
//! cargo run --release -p flash-accel --example accuracy_robustness
//! ```

use flash_accel::config::FlashConfig;
use flash_fft::error::{monte_carlo_error, ErrorWorkload};
use flash_nn::quant::Requantizer;
use flash_nn::robustness::{layer_flip_rate, MarginModel};
use rand::SeedableRng;

fn main() {
    let he = flash_he::HeParams::flash_default();
    println!(
        "FLASH parameters: N = {}, q = 2^{:.1}, t = 2^{}, kernel budget q/2t = {}",
        he.n,
        (he.q as f64).log2(),
        he.t.trailing_zeros(),
        he.noise_ceiling()
    );
    let wl = ErrorWorkload {
        weight_mag: 8,
        weight_nnz: 9,
        act_mag: (he.t / 2) as f64,
    };
    let requant = Requantizer::calibrate(576 * 64, 4);
    let sps: Vec<i64> = (-(576 * 64)..(576 * 64)).step_by(23).collect();
    let margin = MarginModel::new(0.7424);

    println!();
    println!(
        "{:>4} {:>4} {:>14} {:>12} {:>10} {:>10}",
        "dw", "k", "q-error std", "SP-err std", "flip rate", "accuracy"
    );
    for (dw, k) in [
        (20u32, 2usize),
        (22, 3),
        (24, 4),
        (27, 5), // the paper's trained operating point
        (27, 18),
        (33, 18),
        (40, 24),
    ] {
        let cfg = FlashConfig::numerics_for(he.n, dw, k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(dw as u64 * 31 + k as u64);
        let err = monte_carlo_error(&cfg, wl, 2, &mut rng);
        let sp_err = err.variance.sqrt() * he.t as f64 / he.q as f64;
        let flip = layer_flip_rate(&requant, &sps, sp_err, &mut rng);
        let acc = margin.accuracy(flip);
        let marker = if dw == 27 && k == 5 { "  <- FLASH" } else { "" };
        println!(
            "{dw:>4} {k:>4} {:>14.1} {:>12.3} {:>10.5} {:>9.2}%{marker}",
            err.variance.sqrt(),
            sp_err,
            flip,
            acc * 100.0
        );
    }
    println!();
    println!("kernel level: q-domain errors below q/2t vanish at decryption;");
    println!("layer level:  SP errors below half a re-quantization step never flip;");
    println!("network level: residual flips barely move the margin-model accuracy.");
    println!("(paper: 74.24% -> 74.19% at the trained k=5, 27-bit operating point)");
}
