//! The wire view of the protocol: serialization, response truncation and
//! the resulting traffic, end to end.
//!
//! ```text
//! cargo run --release -p flash-accel --example secure_transport
//! ```

use flash_2pc::protocol::{expected_conv_mod, ConvProtocol};
use flash_he::encoding::ConvShape;
use flash_he::serialize::{ciphertext_from_bytes, ciphertext_to_bytes};
use flash_he::truncate::{safe_truncation, TruncatedCiphertext};
use flash_he::{HeParams, Poly, PolyMulBackend, SecretKey};
use rand::SeedableRng;

fn main() {
    let params = HeParams::test_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let sk = SecretKey::generate(&params, &mut rng);

    // --- 1. A ciphertext crosses the wire byte-exactly.
    let m = Poly::uniform(params.n, params.t, &mut rng);
    let ct = sk.encrypt(&m, &mut rng);
    let wire = ciphertext_to_bytes(&ct);
    let back = ciphertext_from_bytes(&wire, params.n, params.q).expect("well-formed wire bytes");
    assert_eq!(sk.decrypt(&back), m);
    println!(
        "serialization: {} coefficients x 2 polys -> {} bytes, decrypts identically",
        params.n,
        wire.len()
    );

    // --- 2. Truncation compresses the download within the noise budget.
    let budget = params.noise_ceiling() as f64 - sk.noise(&ct, &m).inf_norm() as f64;
    let (d0, d1) = safe_truncation(&params, budget, 0.25);
    let t = TruncatedCiphertext::truncate(&ct, d0, d1, &params);
    let saved = 1.0 - t.byte_size(&params) as f64 / ct.byte_size() as f64;
    assert_eq!(sk.decrypt(&t.reconstruct(&params)), m);
    println!(
        "truncation: dropping ({d0}, {d1}) low bits saves {:.0}% of the response \
         (noise bound {:.0} of budget {budget:.0})",
        saved * 100.0,
        t.noise_bound(&params)
    );

    // --- 3. The full protocol with compression enabled.
    let shape = ConvShape {
        c: 2,
        h: 6,
        w: 6,
        m: 2,
        k: 3,
    };
    let x: Vec<i64> = (0..shape.input_len())
        .map(|i| ((i as i64 * 5) % 15) - 7)
        .collect();
    let w: Vec<i64> = (0..shape.m * shape.kernel_len())
        .map(|i| ((i as i64 * 3) % 15) - 7)
        .collect();

    let plain = ConvProtocol::new(params.clone(), shape, PolyMulBackend::FftF64);
    let mut r = rand::rngs::StdRng::seed_from_u64(1);
    let (_, base) = plain.run(&sk, &x, &w, &mut r);

    let compressed =
        ConvProtocol::new(params, shape, PolyMulBackend::FftF64).with_truncation(d0.min(8), 2);
    let mut r = rand::rngs::StdRng::seed_from_u64(1);
    let (shares, stats) = compressed.run(&sk, &x, &w, &mut r);
    assert_eq!(
        compressed.reconstruct(&shares),
        expected_conv_mod(&x, &w, &shape, compressed.ring())
    );
    println!(
        "protocol: upload {} B; download {} B compressed vs {} B plain ({:.0}% saved), \
         outputs bit-exact",
        stats.upload_bytes,
        stats.download_bytes,
        base.download_bytes,
        (1.0 - stats.download_bytes as f64 / base.download_bytes as f64) * 100.0
    );
}
