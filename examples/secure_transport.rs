//! The wire view of the protocol: serialization, response truncation,
//! the resulting traffic, and what happens when the wire misbehaves —
//! checksum-detected faults, retransmission, and the noise-guard
//! fallback to the exact NTT backend.
//!
//! ```text
//! cargo run --release -p flash-accel --example secure_transport
//! ```

use flash_2pc::protocol::{expected_conv_mod, ConvProtocol};
use flash_2pc::{FaultOp, FaultPlan, TransportConfig};
use flash_he::encoding::ConvShape;
use flash_he::serialize::{ciphertext_from_bytes, ciphertext_to_bytes};
use flash_he::truncate::{safe_truncation, TruncatedCiphertext};
use flash_he::{HeParams, Poly, PolyMulBackend, SecretKey};
use rand::SeedableRng;

fn main() {
    let params = HeParams::test_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let sk = SecretKey::generate(&params, &mut rng);

    // --- 1. A ciphertext crosses the wire byte-exactly.
    let m = Poly::uniform(params.n, params.t, &mut rng);
    let ct = sk.encrypt(&m, &mut rng);
    let wire = ciphertext_to_bytes(&ct);
    let back = ciphertext_from_bytes(&wire, params.n, params.q).expect("well-formed wire bytes");
    assert_eq!(sk.decrypt(&back), m);
    println!(
        "serialization: {} coefficients x 2 polys -> {} bytes, decrypts identically",
        params.n,
        wire.len()
    );

    // --- 2. Truncation compresses the download within the noise budget.
    let budget = params.noise_ceiling() as f64 - sk.noise(&ct, &m).inf_norm() as f64;
    let (d0, d1) = safe_truncation(&params, budget, 0.25);
    let t = TruncatedCiphertext::truncate(&ct, d0, d1, &params);
    let saved = 1.0 - t.byte_size(&params) as f64 / ct.byte_size() as f64;
    assert_eq!(sk.decrypt(&t.reconstruct(&params)), m);
    println!(
        "truncation: dropping ({d0}, {d1}) low bits saves {:.0}% of the response \
         (noise bound {:.0} of budget {budget:.0})",
        saved * 100.0,
        t.noise_bound(&params)
    );

    // --- 3. The full protocol with compression enabled.
    let shape = ConvShape {
        c: 2,
        h: 6,
        w: 6,
        m: 2,
        k: 3,
    };
    let x: Vec<i64> = (0..shape.input_len())
        .map(|i| ((i as i64 * 5) % 15) - 7)
        .collect();
    let w: Vec<i64> = (0..shape.m * shape.kernel_len())
        .map(|i| ((i as i64 * 3) % 15) - 7)
        .collect();

    let plain = ConvProtocol::new(params.clone(), shape, PolyMulBackend::FftF64);
    let mut r = rand::rngs::StdRng::seed_from_u64(1);
    let (_, base) = plain.run(&sk, &x, &w, &mut r).expect("protocol run failed");

    let compressed =
        ConvProtocol::new(params, shape, PolyMulBackend::FftF64).with_truncation(d0.min(8), 2);
    let mut r = rand::rngs::StdRng::seed_from_u64(1);
    let (shares, stats) = compressed
        .run(&sk, &x, &w, &mut r)
        .expect("protocol run failed");
    assert_eq!(
        compressed.reconstruct(&shares),
        expected_conv_mod(&x, &w, &shape, compressed.ring())
    );
    println!(
        "protocol: upload {} B; download {} B compressed vs {} B plain ({:.0}% saved), \
         outputs bit-exact",
        stats.upload_bytes,
        stats.download_bytes,
        base.download_bytes,
        (1.0 - stats.download_bytes as f64 / base.download_bytes as f64) * 100.0
    );

    // --- 4. A faulty wire: frames get flipped, truncated, dropped,
    // duplicated and reordered by a seeded injector; the per-frame
    // checksums reject every corruption and bounded retransmission
    // recovers — the result is bit-identical to the clean run.
    let shape4 = ConvShape {
        c: 1,
        h: 4,
        w: 4,
        m: 1,
        k: 3,
    };
    let x4: Vec<i64> = (0..shape4.input_len())
        .map(|i| (i as i64 % 5) - 2)
        .collect();
    let w4: Vec<i64> = (0..shape4.kernel_len())
        .map(|i| (i as i64 % 5) - 2)
        .collect();
    let p4 = HeParams::test_256();
    let clean = ConvProtocol::new(p4.clone(), shape4, PolyMulBackend::Ntt);
    let mut r = rand::rngs::StdRng::seed_from_u64(3);
    let (clean_shares, _) = clean.run(&sk, &x4, &w4, &mut r).expect("clean run");

    // A scripted schedule, applied to each direction's successive
    // transmissions: the first frame arrives with a flipped bit, its
    // retransmission arrives truncated, the second retransmission is
    // clean. (`FaultPlan::Random` draws the same fault classes from a
    // seeded RNG instead.)
    let faulty = ConvProtocol::new(p4.clone(), shape4, PolyMulBackend::Ntt).with_transport_config(
        TransportConfig::faulty(FaultPlan::Scripted(vec![
            FaultOp::FlipBit { byte: 40, bit: 1 },
            FaultOp::Truncate { keep: 10 },
        ])),
    );
    let mut r = rand::rngs::StdRng::seed_from_u64(3);
    let (fault_shares, fstats) = faulty.run(&sk, &x4, &w4, &mut r).expect("recovered run");
    assert_eq!(fault_shares, clean_shares);
    println!(
        "faulty wire: {} faults detected, {} frames retried, {} of {} framed bytes were \
         overhead; recovered output bit-identical",
        fstats.faults_detected,
        fstats.frames_retried,
        (fstats.upload_wire_bytes + fstats.download_wire_bytes)
            - (fstats.upload_bytes + fstats.download_bytes),
        fstats.upload_wire_bytes + fstats.download_wire_bytes,
    );

    // --- 5. The noise guard: shrinking the margin to zero makes every
    // band's composed bound look unsafe, so each (oc, band) job re-runs
    // on the exact NTT backend — decryption stays exact and telemetry
    // records the fallbacks.
    let mut acfg =
        flash_fft::ApproxFftConfig::uniform(p4.n, flash_math::fixed::FxpFormat::new(18, 34), 30);
    acfg.max_shift = 30;
    let guarded =
        ConvProtocol::new(p4, shape4, PolyMulBackend::approx(acfg)).with_noise_margin(0.0);
    let mut r = rand::rngs::StdRng::seed_from_u64(3);
    let (gshares, gstats) = guarded.run(&sk, &x4, &w4, &mut r).expect("guarded run");
    assert_eq!(
        guarded.reconstruct(&gshares),
        expected_conv_mod(&x4, &w4, &shape4, guarded.ring())
    );
    println!(
        "noise guard: margin 0.0 forced {} exact-NTT fallbacks across {} responses, \
         output still exact",
        gstats.ntt_fallbacks, gstats.ciphertexts_down
    );
}
