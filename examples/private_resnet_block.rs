//! Private inference of a (scaled-down) ResNet bottleneck block, plus the
//! full-scale ResNet-18/-50 performance model.
//!
//! ```text
//! cargo run --release -p flash-accel --example private_resnet_block
//! ```
//!
//! Part 1 runs a miniature bottleneck block (1x1 → 3x3 → 1x1 with
//! re-quantization between layers) through the hybrid protocol
//! functionally, bit-checked against the cleartext pipeline. Part 2 runs
//! the paper-scale workload/scheduling model over every linear layer of
//! ResNet-18 and ResNet-50.

use flash_accel::config::FlashConfig;
use flash_accel::hconv::FlashHconv;
use flash_accel::inference::run_network;
use flash_he::SecretKey;
use flash_nn::layers::{conv_reference, ConvLayerSpec};
use flash_nn::quant::{Quantizer, Requantizer};
use flash_nn::resnet::{resnet18_conv_layers, resnet50_conv_layers};
use rand::SeedableRng;

fn conv(name: &str, c: usize, h: usize, m: usize, k: usize, pad: usize) -> ConvLayerSpec {
    ConvLayerSpec {
        name: name.into(),
        c,
        h,
        w: h,
        m,
        k,
        stride: 1,
        pad,
    }
}

fn main() {
    // ---------- Part 1: functional mini bottleneck block ----------
    let cfg = FlashConfig::test_small();
    let engine = FlashHconv::new(cfg.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let sk = SecretKey::generate(&cfg.he, &mut rng);
    let ring = engine.ring();

    let block = [
        conv("block.conv1", 4, 8, 2, 1, 0), // 1x1 squeeze
        conv("block.conv2", 2, 8, 2, 3, 1), // 3x3
        conv("block.conv3", 2, 8, 4, 1, 0), // 1x1 expand
    ];

    let mut x = block[0].sample_input(Quantizer::a4(), &mut rng);
    let mut x_clear = x.clone();
    println!("mini bottleneck block (functional, N = {}):", cfg.he.n);
    for layer in &block {
        let w = layer.sample_weights(Quantizer::w4(), &mut rng);
        // private path
        let (y_priv, stats) = engine
            .run_layer(&sk, layer, &x, &w, &mut rng)
            .expect("protocol run failed");
        // cleartext reference
        let y_clear = conv_reference(&x_clear, &w, layer);
        let expected: Vec<i64> = y_clear
            .iter()
            .map(|&v| ring.to_signed(ring.reduce(v)))
            .collect();
        assert_eq!(y_priv, expected, "{} mismatch", layer.name);
        // re-quantize both paths identically (the 2PC non-linear stage)
        let max_sp = y_clear.iter().map(|v| v.abs()).max().unwrap_or(1);
        let rq = Requantizer::calibrate(max_sp, 4);
        x = y_priv.iter().map(|&v| rq.apply(v)).collect();
        x_clear = y_clear.iter().map(|&v| rq.apply(v)).collect();
        assert_eq!(x, x_clear);
        println!(
            "  {}: {} outputs OK ({} cts up / {} down, {} weight transforms)",
            layer.name,
            y_priv.len(),
            stats.ciphertexts_up,
            stats.ciphertexts_down,
            stats.weight_transforms
        );
    }
    println!("  block output matches the cleartext pipeline bit-for-bit\n");

    // ---------- Part 2: paper-scale performance model ----------
    let paper_cfg = FlashConfig::paper_default();
    for net in [resnet18_conv_layers(), resnet50_conv_layers()] {
        let run = run_network(&net, &paper_cfg);
        println!(
            "{}: {} conv layers | transform latency {:.2} ms | CHAM {:.1} ms | speedup {:.1}x",
            run.name,
            run.layers.len(),
            run.transform_latency_s * 1e3,
            run.cham_latency_s * 1e3,
            run.speedup_vs_cham()
        );
        println!(
            "  energy: datapath {:.1} mJ, reduction vs F1 {:.1} %",
            run.total_datapath_energy_uj / 1e3,
            run.energy_reduction_vs_f1() * 100.0
        );
        // the three most expensive layers
        let mut by_cycles: Vec<_> = run.layers.iter().collect();
        by_cycles.sort_by_key(|l| std::cmp::Reverse(l.perf.cycles));
        for l in by_cycles.iter().take(3) {
            println!(
                "  hottest: {:<22} {:>9} cycles, bottleneck: {}",
                l.workload.name, l.perf.cycles, l.perf.bottleneck
            );
        }
    }
}
