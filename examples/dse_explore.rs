//! Design-space exploration of the approximate FFT for one layer.
//!
//! ```text
//! cargo run --release -p flash-accel --example dse_explore
//! ```
//!
//! Runs the paper's Figure-10 loop on a chosen ResNet-50 layer: Bayesian
//! optimization over per-stage bit-widths and twiddle quantization
//! levels, printing the Pareto front and validating one front point with
//! a bit-accurate Monte-Carlo error measurement.

use flash_dse::bayesopt::{optimize_multi, BoConfig};
use flash_dse::objective::Objective;
use flash_dse::pareto::pareto_front;
use flash_dse::space::DesignSpace;
use flash_fft::error::{monte_carlo_error, ErrorWorkload};
use flash_nn::resnet::resnet50_conv_layers;
use flash_nn::sparsity::layer_weight_sparsity;
use rand::SeedableRng;

fn main() {
    let he = flash_he::HeParams::flash_default();
    let net = resnet50_conv_layers();
    let spec = net.layer(28); // the paper's Figure 11(b) layer
    let sp = layer_weight_sparsity(spec, he.n);
    println!(
        "exploring layer 28 = {} ({}x{}, {} valid weight coefficients)",
        spec.name, spec.k, spec.k, sp.valid_per_poly
    );

    let space = DesignSpace::flash_default(he.n);
    let obj = Objective::from_layer(space, sp.valid_per_poly, 8.0, (he.t / 2) as f64);

    // A quicker run than the paper's 1000 points — tune `weights`/`iters`
    // up for denser fronts.
    let cfg = BoConfig {
        init: 10,
        iters: 20,
        candidates: 128,
        ..BoConfig::default()
    };
    let weights = [0.15, 0.5, 0.85];
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let evals = optimize_multi(&obj, &weights, &cfg, &mut rng);
    let front = pareto_front(&evals);
    println!(
        "\n{} evaluations, {} Pareto-optimal:",
        evals.len(),
        front.len()
    );
    println!("{:>10} {:>14}   per-stage dw", "power mW", "err variance");
    for e in &front {
        let dws: Vec<u32> = e
            .point
            .frac
            .iter()
            .map(|f| 1 + obj.space().int_bits + f)
            .collect();
        println!("{:>10.3} {:>14.3e}   {:?}", e.power, e.error_variance, dws);
    }

    // Cross-check the middle front point with bit-accurate Monte Carlo.
    let mid = &front[front.len() / 2];
    let cfg_mid = mid.point.to_config(obj.space());
    let wl = ErrorWorkload {
        weight_mag: 8,
        weight_nnz: sp.valid_per_poly,
        act_mag: (he.t / 2) as f64,
    };
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(2);
    let mc = monte_carlo_error(&cfg_mid, wl, 2, &mut rng2);
    println!(
        "\nvalidation of mid-front point: analytical {:.3e} vs Monte-Carlo {:.3e}",
        mid.error_variance, mc.variance
    );
    let ratio = mid.error_variance / mc.variance.max(1e-30);
    println!("analytical/MC ratio: {ratio:.2} (the models agree within ~an order)");
}
