//! The sparse butterfly dataflow, step by step.
//!
//! ```text
//! cargo run --release -p flash-accel --example sparse_dataflow
//! ```
//!
//! Reproduces the paper's Examples 4.1 (skipping) and 4.2 (merging) on a
//! 16-point network, then shows the effect on a real Cheetah-encoded
//! weight polynomial — with a functional check that the sparse executor
//! produces bit-identical spectra to the dense FFT.

use flash_he::encoding::{ConvEncoder, ConvShape, TileAlignment};
use flash_math::C64;
use flash_sparse::executor::SparseFft;
use flash_sparse::pattern::SparsityPattern;
use flash_sparse::symbolic::{analyze, twist_mults};

fn main() {
    // --- Example 4.1: contiguous valid values -> skipping. ---
    let p = SparsityPattern::from_indices(16, [0, 1, 2, 3]);
    let c = analyze(&p);
    println!("Example 4.1 (skipping): 4 contiguous valid inputs in a 16-point network");
    println!(
        "  classical: {} mults; sparse: {} mults ({}% reduced — paper: 87.5%)",
        c.dense_mults(),
        c.mults(),
        (c.reduction() * 100.0).round()
    );

    // --- Example 4.2: one isolated value -> merging. ---
    let p = SparsityPattern::from_indices(16, [6]);
    let c = analyze(&p);
    println!("\nExample 4.2 (merging): single valid input at bit-reversed position 6");
    println!(
        "  classical: {} mults; merged chains: {} mults (paper counts 4, charging ω^0)",
        c.dense_mults(),
        c.mults()
    );

    // --- A real weight polynomial: 3x3 kernel over a 56x56 image. ---
    let shape = ConvShape {
        c: 1,
        h: 58,
        w: 58,
        m: 1,
        k: 3,
    };
    let enc = ConvEncoder::with_alignment(shape, 4096, TileAlignment::PowerOfTwo);
    let idx = enc.weight_indices(0);
    let natural = SparsityPattern::from_indices(4096, idx.iter().copied());
    let half = 2048;
    let folded = SparsityPattern::from_mask(
        (0..half)
            .map(|j| natural.get(j) || natural.get(j + half))
            .collect(),
    );
    let counts = analyze(&folded.bit_reversed());
    let total = counts.mults() + twist_mults(&folded);
    let dense = 2048 / 2 * 11 + 2048;
    println!("\nResNet-50 stage-1 weight polynomial (9 valid of 4096, aligned layout):");
    println!(
        "  dense FFT: {} mults; sparse dataflow: {} mults ({:.1}% reduced)",
        dense,
        total,
        (1.0 - total as f64 / dense as f64) * 100.0
    );

    // --- Functional check: the optimization is an exact rewrite. ---
    let sp = SparseFft::new(half);
    let mut input = vec![C64::ZERO; half];
    for (v, &i) in idx.iter().enumerate().map(|(v, i)| (v as f64 + 1.0, i)) {
        let slot = i % half;
        input[slot] += C64::new(v, -v / 2.0);
    }
    let sparse_out = sp.transform(&input);
    let plan = flash_fft::fft64::FftPlan::new(half);
    let mut dense_out = input.clone();
    plan.transform(&mut dense_out, flash_fft::dft::Direction::Positive);
    let max_err = sparse_out
        .iter()
        .zip(&dense_out)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0, f64::max);
    println!("  executor vs dense FFT: max |Δ| = {max_err:.2e} (exact rewrite)");
    assert!(max_err < 1e-9);
}
